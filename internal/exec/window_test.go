package exec

import (
	"math/rand"
	"testing"

	"repro/internal/plan"
	"repro/internal/types"
)

// TestBuildWindowGroups checks the shared-pass bucketing: functions with
// the same (partition, order) spec land in one group with plan order
// preserved, distinct specs get their own.
func TestBuildWindowGroups(t *testing.T) {
	ts := []types.T{types.TBigint, types.TBigint, types.TBigint}
	ob := []plan.SortKey{{Col: 1}}
	fns := []plan.WindowFn{
		{Fn: "sum", Arg: &plan.ColRef{Idx: 2, T: types.TBigint}, PartitionBy: []int{0}, OrderBy: ob, T: types.TBigint},
		{Fn: "rank", PartitionBy: []int{0}, OrderBy: []plan.SortKey{{Col: 1, Desc: true}}, T: types.TBigint},
		{Fn: "count", PartitionBy: []int{0}, OrderBy: ob, T: types.TBigint},
		{Fn: "row_number", PartitionBy: []int{0}, OrderBy: ob, T: types.TBigint},
	}
	groups, err := buildWindowGroups(fns, ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (three fns share one spec)", len(groups))
	}
	if got := groups[0].fnIdx; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("shared group fnIdx %v, want [0 2 3]", got)
	}
	if got := groups[1].fnIdx; len(got) != 1 || got[0] != 1 {
		t.Errorf("desc group fnIdx %v, want [1]", got)
	}
}

// windowTrialRows builds random (g, k, v) rows with heavy ties and NULL
// order keys.
func windowTrialRows(rng *rand.Rand, n int) [][]types.Datum {
	rows := make([][]types.Datum, n)
	for i := range rows {
		k := types.NewBigint(int64(rng.Intn(6)))
		if rng.Intn(9) == 0 {
			k = types.NullOf(types.Int64)
		}
		rows[i] = []types.Datum{
			types.NewBigint(int64(rng.Intn(4))),
			k,
			types.NewBigint(int64(rng.Intn(500))),
		}
	}
	return rows
}

func runWindowOperatorTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	rows := windowTrialRows(rng, 200+rng.Intn(600))
	ts := []types.T{types.TBigint, types.TBigint, types.TBigint}
	fns := []plan.WindowFn{
		{Fn: "sum", Arg: &plan.ColRef{Idx: 2, T: types.TBigint}, PartitionBy: []int{0}, OrderBy: []plan.SortKey{{Col: 1}}, T: types.TBigint},
		{Fn: "count", PartitionBy: []int{0}, OrderBy: []plan.SortKey{{Col: 1}}, T: types.TBigint},
		{Fn: "rank", PartitionBy: []int{0}, OrderBy: []plan.SortKey{{Col: 1, Desc: true, NullsFirst: true}}, T: types.TBigint},
		{Fn: "min", Arg: &plan.ColRef{Idx: 2, T: types.TBigint}, PartitionBy: []int{1}, T: types.TBigint},
		{Fn: "row_number", OrderBy: []plan.SortKey{{Col: 2}}, T: types.TBigint},
	}
	outTs := append(append([]types.T{}, ts...), types.TBigint, types.TBigint, types.TBigint, types.TBigint, types.TBigint)

	run := func(budget int64) ([][]types.Datum, *Context) {
		env := newSpillEnv(budget)
		w := &WindowOp{Input: &ValuesOp{Rows: rows, Ts: ts}, Fns: fns, Out: outTs, Ctx: env.ctx}
		got, err := Drain(w)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if leaks := env.leakedFiles(t); len(leaks) != 0 {
			t.Fatalf("budget=%d: window leaked scratch files %v", budget, leaks)
		}
		return got, env.ctx
	}
	base, _ := run(0)
	budget := int64(2048 + rng.Intn(16384))
	got, ctx := run(budget)
	if ctx.Governor().SpilledBytes() == 0 {
		t.Fatalf("budget=%d over %d rows did not spill", budget, len(rows))
	}
	if !rowsEqual(base, got) {
		t.Fatalf("budget=%d rows=%d: external window output diverges from in-memory", budget, len(rows))
	}
}

// TestWindowSpillOperatorEquivalence is the operator-level fixed-seed
// property: the external (spilling) window pass must be byte-identical to
// the in-memory pass — arrival order, peer frames and tie-breaks included.
// `go test -tags stress` runs the seed-randomized twin.
func TestWindowSpillOperatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		runWindowOperatorTrial(t, rng)
	}
}
