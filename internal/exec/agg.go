package exec

import (
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// CompiledAgg is one aggregate with its compiled argument.
type CompiledAgg struct {
	Fn       string
	Arg      *CompiledExpr // nil for COUNT(*)
	Distinct bool
	T        types.T
}

// HashAggOp groups rows and computes aggregates, including grouping sets:
// each input row is fed once per grouping set with the non-set columns
// masked to NULL, and a __grouping_id column identifies the set
// (paper §3.1 advanced OLAP operations). Group state is memory-governed:
// when the query budget denies growth the accumulated groups spill to
// hash-partitioned scratch files and the drain re-aggregates one
// partition at a time (aggspill.go).
type HashAggOp struct {
	Input        Operator
	GroupExprs   []*CompiledExpr
	Aggs         []CompiledAgg
	GroupingSets [][]int
	Out          []types.T
	Stats        *RuntimeStats
	Ctx          *Context

	sink *spillAggTable
	done bool
}

type aggGroup struct {
	h      uint64 // bucket hash, kept for partial-aggregate merging
	keys   []types.Datum
	gid    int64
	states []aggState
}

// groupTable is a hash table of aggregation groups in insertion order. It
// serves both the serial HashAggOp and, as the thread-local partial and
// final tables, the two-phase ParallelHashAggOp.
type groupTable struct {
	groups map[uint64][]*aggGroup
	order  []*aggGroup
}

func newGroupTable() *groupTable {
	return &groupTable{groups: make(map[uint64][]*aggGroup)}
}

// groupSeed is the initial hash for a group key under a grouping id.
func groupSeed(gid int64) uint64 {
	return 1469598103934665603 ^ uint64(gid)*vector.HashPrime
}

// lookup locates the group for (h, gid, key values at row r), or nil;
// mask[c] false means column c is masked to NULL by the grouping set.
func (t *groupTable) lookup(h uint64, gid int64, keyCols []*vector.Vector, r int, mask []bool) *aggGroup {
	for _, g := range t.groups[h] {
		if g.gid == gid && groupKeysMatch(g.keys, keyCols, r, mask) {
			return g
		}
	}
	return nil
}

// lookupKeys locates the group for already-materialized key datums, or nil
// (partial-aggregate merging and spill-partition re-aggregation).
func (t *groupTable) lookupKeys(h uint64, gid int64, keys []types.Datum) *aggGroup {
	for _, g := range t.groups[h] {
		if g.gid == gid && datumsEqual(g.keys, keys) {
			return g
		}
	}
	return nil
}

// newAggGroup materializes a group's key datums (only when the group is
// actually created).
func newAggGroup(h uint64, gid int64, keyCols []*vector.Vector, r int, mask []bool, nAggs int) *aggGroup {
	keys := make([]types.Datum, len(keyCols))
	for c, kc := range keyCols {
		if mask == nil || mask[c] {
			keys[c] = kc.Get(r)
		} else {
			keys[c] = types.NullOf(kc.Type.Kind)
		}
	}
	return &aggGroup{h: h, keys: keys, gid: gid, states: make([]aggState, nAggs)}
}

func (t *groupTable) insert(g *aggGroup) {
	t.groups[g.h] = append(t.groups[g.h], g)
	t.order = append(t.order, g)
}

// mergeInto folds one complete group into t — equal keys merge aggregate
// states, new keys insert — and reports whether the group was inserted
// (so callers can account the new residency). Every merge in the engine
// (partial tables, re-read spill partitions, the partition-aligned final
// merge) goes through here.
func (t *groupTable) mergeInto(g *aggGroup, aggs []CompiledAgg) bool {
	if dst := t.lookupKeys(g.h, g.gid, g.keys); dst != nil {
		for ai := range aggs {
			dst.states[ai].merge(aggs[ai], &g.states[ai])
		}
		return false
	}
	t.insert(g)
	return true
}

// groupKeysMatch compares stored group keys against row r of the key
// vectors, directly on the columnar backing stores (Vector.EqDatum) — no
// per-row Datum materialization on the collision path. Masked columns are
// NULL on both sides by construction.
func groupKeysMatch(keys []types.Datum, keyCols []*vector.Vector, r int, mask []bool) bool {
	for c, kc := range keyCols {
		if mask != nil && !mask[c] {
			continue
		}
		if !kc.EqDatum(r, keys[c]) {
			return false
		}
	}
	return true
}

// emitBatch renders groups starting at ordinal start into a batch, or nil
// when exhausted.
func (t *groupTable) emitBatch(start int, out []types.T, aggs []CompiledAgg, gsets [][]int) *vector.Batch {
	if start >= len(t.order) {
		return nil
	}
	n := len(t.order) - start
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	b := vector.NewBatch(out, n)
	for i := 0; i < n; i++ {
		g := t.order[start+i]
		c := 0
		for _, k := range g.keys {
			b.Cols[c].Set(i, k)
			c++
		}
		for ai := range aggs {
			b.Cols[c].Set(i, g.states[ai].result(aggs[ai]))
			c++
		}
		if gsets != nil {
			b.Cols[c].Set(i, types.NewBigint(g.gid))
		}
	}
	b.N = n
	return b
}

type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	sumScale int
	min, max types.Datum
	distinct map[uint64][]types.Datum
	// dorder keeps the distinct values in arrival order. Spill encoding
	// and partial-state merging replay it instead of iterating the map, so
	// non-associative accumulations (SUM(DISTINCT) over DOUBLE) fold in a
	// deterministic order — the order the serial in-memory pass used.
	dorder []types.Datum
}

// Types implements Operator.
func (a *HashAggOp) Types() []types.T { return a.Out }

// Open implements Operator.
func (a *HashAggOp) Open() error {
	a.sink = newSpillAggTable(a.Ctx, a.Aggs, len(a.GroupExprs))
	a.done = false
	return a.Input.Open()
}

func (a *HashAggOp) consume() error {
	sets := a.GroupingSets
	if sets == nil {
		all := make([]int, len(a.GroupExprs))
		for i := range all {
			all[i] = i
		}
		sets = [][]int{all}
	}
	// Per-set column masks and grouping ids are row-independent.
	masks := make([][]bool, len(sets))
	gids := make([]int64, len(sets))
	for si, set := range sets {
		mask := make([]bool, len(a.GroupExprs))
		for _, c := range set {
			mask[c] = true
		}
		masks[si] = mask
		if a.GroupingSets != nil {
			for c, in := range mask {
				if !in {
					gids[si] |= 1 << uint(c)
				}
			}
		}
	}
	var colHash [][]uint64
	for {
		if err := a.Ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := a.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyCols := make([]*vector.Vector, len(a.GroupExprs))
		for i, g := range a.GroupExprs {
			v, err := g.Eval(b)
			if err != nil {
				return err
			}
			keyCols[i] = v
		}
		argCols := make([]*vector.Vector, len(a.Aggs))
		for i, ag := range a.Aggs {
			if ag.Arg != nil {
				v, err := ag.Arg.Eval(b)
				if err != nil {
					return err
				}
				argCols[i] = v
			}
		}
		// Raw per-column key hashes, column-at-a-time (no per-row datums).
		if colHash == nil {
			colHash = make([][]uint64, len(keyCols))
		}
		for c, kc := range keyCols {
			if cap(colHash[c]) < b.N {
				colHash[c] = make([]uint64, b.N)
			} else {
				colHash[c] = colHash[c][:b.N]
				for i := range colHash[c] {
					colHash[c][i] = 0
				}
			}
			kc.HashInto(b.Sel, b.N, colHash[c])
		}
		for i := 0; i < b.N; i++ {
			r := b.RowIdx(i)
			for si := range sets {
				mask := masks[si]
				gid := gids[si]
				h := groupSeed(gid)
				for c := range keyCols {
					if mask[c] {
						h = h*vector.HashPrime ^ colHash[c][i]
					} else {
						h = h*vector.HashPrime ^ vector.NullHash
					}
				}
				g, err := a.sink.findOrAdd(h, gid, keyCols, r, mask)
				if err != nil {
					return err
				}
				var extra int64
				for ai := range a.Aggs {
					var d types.Datum
					if argCols[ai] != nil {
						d = argCols[ai].Get(r)
					}
					extra += g.states[ai].update(a.Aggs[ai], d)
				}
				// Accounted only after every aggregate of the row applied:
				// noteStateGrowth may spill the table, and g must be
				// complete when it goes to disk.
				if extra > 0 {
					if err := a.sink.noteStateGrowth(extra); err != nil {
						return err
					}
				}
			}
		}
	}
	// Global aggregate with no input rows still emits one row.
	if len(a.GroupExprs) == 0 && a.sink.groupCount() == 0 {
		a.sink.addEmpty()
	}
	return a.sink.finish()
}

func datumsEqual(a, b []types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Null != b[i].Null {
			return false
		}
		if !a[i].Null && a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// update folds one value into the state. It returns the estimated bytes
// the state grew by (DISTINCT value sets are the only unbounded part), so
// callers can account the growth against the memory governor.
func (s *aggState) update(ag CompiledAgg, d types.Datum) int64 {
	if ag.Arg != nil && d.Null {
		return 0 // SQL aggregates skip NULLs
	}
	var grew int64
	if ag.Distinct {
		if s.distinct == nil {
			s.distinct = make(map[uint64][]types.Datum)
			grew += 48
		}
		h := d.Hash()
		for _, seen := range s.distinct[h] {
			if seen.Compare(d) == 0 {
				return grew
			}
		}
		s.distinct[h] = append(s.distinct[h], d)
		s.dorder = append(s.dorder, d)
		grew += 2 * (datumBytes(d) + 24)
	}
	s.count++
	switch ag.Fn {
	case "sum", "avg":
		switch d.K {
		case types.Float64:
			s.sumF += d.F
		case types.Decimal:
			// Normalize to the widest scale seen.
			sc := d.DecimalScale()
			if sc > s.sumScale {
				s.sumI *= types.Pow10(sc - s.sumScale)
				s.sumScale = sc
			}
			s.sumI += d.I * types.Pow10(s.sumScale-sc)
			s.sumF += d.Float()
		default:
			s.sumI += d.I
			s.sumF += float64(d.I)
		}
	case "min":
		if s.min.K == types.Unknown || d.Compare(s.min) < 0 {
			s.min = d
		}
	case "max":
		if s.max.K == types.Unknown || d.Compare(s.max) > 0 {
			s.max = d
		}
	}
	return grew
}

// merge folds another partial state into s (two-phase parallel
// aggregation). Distinct states replay the other side's value set through
// update so deduplication and sums stay exact; plain states combine
// counts, sums (normalizing decimal scales) and extrema directly.
func (s *aggState) merge(ag CompiledAgg, o *aggState) {
	if ag.Distinct {
		for _, d := range o.dorder {
			s.update(ag, d)
		}
		return
	}
	s.count += o.count
	switch ag.Fn {
	case "sum", "avg":
		if o.sumScale > s.sumScale {
			s.sumI *= types.Pow10(o.sumScale - s.sumScale)
			s.sumScale = o.sumScale
		}
		s.sumI += o.sumI * types.Pow10(s.sumScale-o.sumScale)
		s.sumF += o.sumF
	case "min":
		if o.min.K != types.Unknown && (s.min.K == types.Unknown || o.min.Compare(s.min) < 0) {
			s.min = o.min
		}
	case "max":
		if o.max.K != types.Unknown && (s.max.K == types.Unknown || o.max.Compare(s.max) > 0) {
			s.max = o.max
		}
	}
}

func (s *aggState) result(ag CompiledAgg) types.Datum {
	switch ag.Fn {
	case "count":
		return types.NewBigint(s.count)
	case "sum":
		if s.count == 0 {
			return types.NullOf(ag.T.Kind)
		}
		switch ag.T.Kind {
		case types.Float64:
			return types.NewDouble(s.sumF)
		case types.Decimal:
			v := s.sumI
			if s.sumScale != ag.T.Scale {
				if s.sumScale < ag.T.Scale {
					v *= types.Pow10(ag.T.Scale - s.sumScale)
				} else {
					v /= types.Pow10(s.sumScale - ag.T.Scale)
				}
			}
			return types.NewDecimal(v, ag.T.Scale)
		default:
			return types.NewBigint(s.sumI)
		}
	case "avg":
		if s.count == 0 {
			return types.NullOf(types.Float64)
		}
		return types.NewDouble(s.sumF / float64(s.count))
	case "min":
		if s.min.K == types.Unknown {
			return types.NullOf(ag.T.Kind)
		}
		return s.min
	case "max":
		if s.max.K == types.Unknown {
			return types.NullOf(ag.T.Kind)
		}
		return s.max
	}
	return types.NullOf(types.Unknown)
}

// Next implements Operator.
func (a *HashAggOp) Next() (*vector.Batch, error) {
	if !a.done {
		if err := a.consume(); err != nil {
			return nil, err
		}
		a.done = true
	}
	out, err := a.sink.nextBatch(a.Out, a.GroupingSets)
	if err != nil || out == nil {
		return nil, err
	}
	if a.Stats != nil {
		a.Stats.Rows.Add(int64(out.N))
	}
	return out, nil
}

// Close implements Operator.
func (a *HashAggOp) Close() error {
	a.sink.close()
	a.sink = nil
	return a.Input.Close()
}

// CompileAggs compiles plan aggregate calls.
func CompileAggs(aggs []plan.AggCall, inTypes []types.T) ([]CompiledAgg, error) {
	out := make([]CompiledAgg, len(aggs))
	for i, a := range aggs {
		ca := CompiledAgg{Fn: a.Fn, Distinct: a.Distinct, T: a.T}
		if a.Arg != nil {
			e, err := Compile(a.Arg, inTypes)
			if err != nil {
				return nil, err
			}
			ca.Arg = e
		}
		out[i] = ca
	}
	return out, nil
}
