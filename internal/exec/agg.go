package exec

import (
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// CompiledAgg is one aggregate with its compiled argument.
type CompiledAgg struct {
	Fn       string
	Arg      *CompiledExpr // nil for COUNT(*)
	Distinct bool
	T        types.T
}

// HashAggOp groups rows and computes aggregates, including grouping sets:
// each input row is fed once per grouping set with the non-set columns
// masked to NULL, and a __grouping_id column identifies the set
// (paper §3.1 advanced OLAP operations).
type HashAggOp struct {
	Input        Operator
	GroupExprs   []*CompiledExpr
	Aggs         []CompiledAgg
	GroupingSets [][]int
	Out          []types.T
	Stats        *RuntimeStats

	groups  map[uint64][]*aggGroup
	order   []*aggGroup
	emitted int
	done    bool
}

type aggGroup struct {
	keys   []types.Datum
	gid    int64
	states []aggState
}

type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	sumScale int
	min, max types.Datum
	distinct map[uint64][]types.Datum
}

// Types implements Operator.
func (a *HashAggOp) Types() []types.T { return a.Out }

// Open implements Operator.
func (a *HashAggOp) Open() error {
	a.groups = make(map[uint64][]*aggGroup)
	a.order = nil
	a.emitted = 0
	a.done = false
	return a.Input.Open()
}

func (a *HashAggOp) consume() error {
	sets := a.GroupingSets
	if sets == nil {
		all := make([]int, len(a.GroupExprs))
		for i := range all {
			all[i] = i
		}
		sets = [][]int{all}
	}
	for {
		b, err := a.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyCols := make([]*vector.Vector, len(a.GroupExprs))
		for i, g := range a.GroupExprs {
			v, err := g.Eval(b)
			if err != nil {
				return err
			}
			keyCols[i] = v
		}
		argCols := make([]*vector.Vector, len(a.Aggs))
		for i, ag := range a.Aggs {
			if ag.Arg != nil {
				v, err := ag.Arg.Eval(b)
				if err != nil {
					return err
				}
				argCols[i] = v
			}
		}
		for i := 0; i < b.N; i++ {
			r := b.RowIdx(i)
			for si, set := range sets {
				keys := make([]types.Datum, len(a.GroupExprs))
				gid := int64(0)
				inSet := make([]bool, len(a.GroupExprs))
				for _, c := range set {
					inSet[c] = true
				}
				for c := range a.GroupExprs {
					if inSet[c] {
						keys[c] = keyCols[c].Get(r)
					} else {
						keys[c] = types.NullOf(keyCols[c].Type.Kind)
						gid |= 1 << uint(c)
					}
				}
				if a.GroupingSets == nil {
					gid = 0
				}
				_ = si
				g := a.lookup(keys, gid)
				for ai := range a.Aggs {
					var d types.Datum
					if argCols[ai] != nil {
						d = argCols[ai].Get(r)
					}
					g.states[ai].update(a.Aggs[ai], d)
				}
			}
		}
	}
	// Global aggregate with no input rows still emits one row.
	if len(a.GroupExprs) == 0 && len(a.order) == 0 {
		a.lookup(nil, 0)
	}
	return nil
}

func (a *HashAggOp) lookup(keys []types.Datum, gid int64) *aggGroup {
	h := uint64(1469598103934665603) ^ uint64(gid)*1099511628211
	for _, k := range keys {
		h = h*1099511628211 ^ k.Hash()
	}
	for _, g := range a.groups[h] {
		if g.gid == gid && datumsEqual(g.keys, keys) {
			return g
		}
	}
	g := &aggGroup{keys: keys, gid: gid, states: make([]aggState, len(a.Aggs))}
	a.groups[h] = append(a.groups[h], g)
	a.order = append(a.order, g)
	return g
}

func datumsEqual(a, b []types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Null != b[i].Null {
			return false
		}
		if !a[i].Null && a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

func (s *aggState) update(ag CompiledAgg, d types.Datum) {
	if ag.Arg != nil && d.Null {
		return // SQL aggregates skip NULLs
	}
	if ag.Distinct {
		if s.distinct == nil {
			s.distinct = make(map[uint64][]types.Datum)
		}
		h := d.Hash()
		for _, seen := range s.distinct[h] {
			if seen.Compare(d) == 0 {
				return
			}
		}
		s.distinct[h] = append(s.distinct[h], d)
	}
	s.count++
	switch ag.Fn {
	case "sum", "avg":
		switch d.K {
		case types.Float64:
			s.sumF += d.F
		case types.Decimal:
			// Normalize to the widest scale seen.
			sc := d.DecimalScale()
			if sc > s.sumScale {
				s.sumI *= types.Pow10(sc - s.sumScale)
				s.sumScale = sc
			}
			s.sumI += d.I * types.Pow10(s.sumScale-sc)
			s.sumF += d.Float()
		default:
			s.sumI += d.I
			s.sumF += float64(d.I)
		}
	case "min":
		if s.min.K == types.Unknown || d.Compare(s.min) < 0 {
			s.min = d
		}
	case "max":
		if s.max.K == types.Unknown || d.Compare(s.max) > 0 {
			s.max = d
		}
	}
}

func (s *aggState) result(ag CompiledAgg) types.Datum {
	switch ag.Fn {
	case "count":
		return types.NewBigint(s.count)
	case "sum":
		if s.count == 0 {
			return types.NullOf(ag.T.Kind)
		}
		switch ag.T.Kind {
		case types.Float64:
			return types.NewDouble(s.sumF)
		case types.Decimal:
			v := s.sumI
			if s.sumScale != ag.T.Scale {
				if s.sumScale < ag.T.Scale {
					v *= types.Pow10(ag.T.Scale - s.sumScale)
				} else {
					v /= types.Pow10(s.sumScale - ag.T.Scale)
				}
			}
			return types.NewDecimal(v, ag.T.Scale)
		default:
			return types.NewBigint(s.sumI)
		}
	case "avg":
		if s.count == 0 {
			return types.NullOf(types.Float64)
		}
		return types.NewDouble(s.sumF / float64(s.count))
	case "min":
		if s.min.K == types.Unknown {
			return types.NullOf(ag.T.Kind)
		}
		return s.min
	case "max":
		if s.max.K == types.Unknown {
			return types.NullOf(ag.T.Kind)
		}
		return s.max
	}
	return types.NullOf(types.Unknown)
}

// Next implements Operator.
func (a *HashAggOp) Next() (*vector.Batch, error) {
	if !a.done {
		if err := a.consume(); err != nil {
			return nil, err
		}
		a.done = true
	}
	if a.emitted >= len(a.order) {
		return nil, nil
	}
	n := len(a.order) - a.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	out := vector.NewBatch(a.Out, n)
	for i := 0; i < n; i++ {
		g := a.order[a.emitted+i]
		c := 0
		for _, k := range g.keys {
			out.Cols[c].Set(i, k)
			c++
		}
		for ai := range a.Aggs {
			out.Cols[c].Set(i, g.states[ai].result(a.Aggs[ai]))
			c++
		}
		if a.GroupingSets != nil {
			out.Cols[c].Set(i, types.NewBigint(g.gid))
		}
	}
	out.N = n
	a.emitted += n
	if a.Stats != nil {
		a.Stats.Rows.Add(int64(n))
	}
	return out, nil
}

// Close implements Operator.
func (a *HashAggOp) Close() error {
	a.groups, a.order = nil, nil
	return a.Input.Close()
}

// CompileAggs compiles plan aggregate calls.
func CompileAggs(aggs []plan.AggCall, inTypes []types.T) ([]CompiledAgg, error) {
	out := make([]CompiledAgg, len(aggs))
	for i, a := range aggs {
		ca := CompiledAgg{Fn: a.Fn, Distinct: a.Distinct, T: a.T}
		if a.Arg != nil {
			e, err := Compile(a.Arg, inTypes)
			if err != nil {
				return nil, err
			}
			ca.Arg = e
		}
		out[i] = ca
	}
	return out, nil
}

// SortOp materializes and orders its input.
type SortOp struct {
	Input Operator
	Keys  []plan.SortKey

	rows    [][]types.Datum
	sorted  bool
	emitted int
}

// Types implements Operator.
func (s *SortOp) Types() []types.T { return s.Input.Types() }

// Open implements Operator.
func (s *SortOp) Open() error {
	s.rows, s.sorted, s.emitted = nil, false, 0
	return s.Input.Open()
}

// Next implements Operator.
func (s *SortOp) Next() (*vector.Batch, error) {
	if !s.sorted {
		for {
			b, err := s.Input.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			for i := 0; i < b.N; i++ {
				s.rows = append(s.rows, b.Row(i))
			}
		}
		sortRows(s.rows, s.Keys)
		s.sorted = true
	}
	if s.emitted >= len(s.rows) {
		return nil, nil
	}
	n := len(s.rows) - s.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	out := vector.NewBatch(s.Types(), n)
	for i := 0; i < n; i++ {
		for c, d := range s.rows[s.emitted+i] {
			out.Cols[c].Set(i, d)
		}
	}
	out.N = n
	s.emitted += n
	return out, nil
}

// Close implements Operator.
func (s *SortOp) Close() error {
	s.rows = nil
	return s.Input.Close()
}

func sortRows(rows [][]types.Datum, keys []plan.SortKey) {
	less := func(a, b []types.Datum) bool {
		for _, k := range keys {
			x, y := a[k.Col], b[k.Col]
			if x.Null || y.Null {
				if x.Null && y.Null {
					continue
				}
				// NULLS FIRST puts NULL before non-NULL regardless of dir.
				if x.Null {
					return k.NullsFirst
				}
				return !k.NullsFirst
			}
			c := x.Compare(y)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	stableSort(rows, less)
}

// stableSort is a merge sort keeping input order for equal keys.
func stableSort(rows [][]types.Datum, less func(a, b []types.Datum) bool) {
	if len(rows) < 2 {
		return
	}
	tmp := make([][]types.Datum, len(rows))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if less(rows[j], rows[i]) {
				tmp[k] = rows[j]
				j++
			} else {
				tmp[k] = rows[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = rows[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = rows[j]
			j++
			k++
		}
		copy(rows[lo:hi], tmp[lo:hi])
	}
	ms(0, len(rows))
}

// TopNOp keeps the N smallest rows under the sort keys without a full
// materialized sort — the physical optimization for ORDER BY + LIMIT.
type TopNOp struct {
	Input Operator
	Keys  []plan.SortKey
	N     int64

	rows    [][]types.Datum
	done    bool
	emitted int
}

// Types implements Operator.
func (t *TopNOp) Types() []types.T { return t.Input.Types() }

// Open implements Operator.
func (t *TopNOp) Open() error {
	t.rows, t.done, t.emitted = nil, false, 0
	return t.Input.Open()
}

// Next implements Operator.
func (t *TopNOp) Next() (*vector.Batch, error) {
	if !t.done {
		for {
			b, err := t.Input.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			for i := 0; i < b.N; i++ {
				t.rows = append(t.rows, b.Row(i))
			}
			// Periodically prune to bound memory.
			if int64(len(t.rows)) > 4*t.N && int64(len(t.rows)) > 4096 {
				sortRows(t.rows, t.Keys)
				t.rows = t.rows[:t.N]
			}
		}
		sortRows(t.rows, t.Keys)
		if int64(len(t.rows)) > t.N {
			t.rows = t.rows[:t.N]
		}
		t.done = true
	}
	if t.emitted >= len(t.rows) {
		return nil, nil
	}
	n := len(t.rows) - t.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	out := vector.NewBatch(t.Types(), n)
	for i := 0; i < n; i++ {
		for c, d := range t.rows[t.emitted+i] {
			out.Cols[c].Set(i, d)
		}
	}
	out.N = n
	t.emitted += n
	return out, nil
}

// Close implements Operator.
func (t *TopNOp) Close() error {
	t.rows = nil
	return t.Input.Close()
}
