//go:build stress

package exec

import (
	"math/rand"
	"testing"
	"time"
)

// TestWindowSpillOperatorRandomSeed is the seed-randomized twin of
// TestWindowSpillOperatorEquivalence.
func TestWindowSpillOperatorRandomSeed(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 200; trial++ {
		runWindowOperatorTrial(t, rng)
	}
}
