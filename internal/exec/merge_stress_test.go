//go:build stress

package exec

import (
	"math/rand"
	"testing"
	"time"
)

// TestLoserTreeMergePropertyRandomSeed is the seed-randomized twin of
// TestLoserTreeMergeProperty: each `go test -tags stress` run exercises
// fresh run partitions, batch sizes and key sets (the hll pattern).
func TestLoserTreeMergePropertyRandomSeed(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 500; trial++ {
		runMergeTrial(t, rng)
	}
}

// TestTopNHeapRandomSeed is the seed-randomized twin of
// TestTopNHeapMatchesStableSort.
func TestTopNHeapRandomSeed(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 1000; trial++ {
		runTopNHeapTrial(t, rng)
	}
}
