package exec

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// genOp emits n rows (i, i*3) across many batches and counts its Opens, so
// spool tests can assert single-flight materialization.
type genOp struct {
	n     int
	opens atomic.Int64
	pos   int
}

func (g *genOp) Types() []types.T { return []types.T{types.TBigint, types.TBigint} }
func (g *genOp) Open() error      { g.opens.Add(1); g.pos = 0; return nil }
func (g *genOp) Close() error     { return nil }
func (g *genOp) Next() (*vector.Batch, error) {
	if g.pos >= g.n {
		return nil, nil
	}
	n := g.n - g.pos
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	b := vector.NewBatch(g.Types(), n)
	for i := 0; i < n; i++ {
		b.Cols[0].Set(i, types.NewBigint(int64(g.pos+i)))
		b.Cols[1].Set(i, types.NewBigint(int64(g.pos+i)*3))
	}
	b.N = n
	g.pos += n
	return b, nil
}

// drainSpool pulls every row's first column out of one consumer.
func drainSpool(t *testing.T, op Operator) []int64 {
	t.Helper()
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].I
	}
	return out
}

// TestSpoolSingleFlightReplay runs many full-replay consumers of one spool
// concurrently: the input must open exactly once and every consumer must
// see every row in order. Run under -race this is the concurrency-safety
// proof for the shared materialization.
func TestSpoolSingleFlightReplay(t *testing.T) {
	for _, budget := range []int64{0, 4096} {
		env := newSpillEnv(budget)
		in := &genOp{n: 3000}
		const consumers = 8
		var wg sync.WaitGroup
		results := make([][]int64, consumers)
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				sp := &SpoolOp{ID: 7, Input: in, Ctx: env.ctx}
				results[c] = drainSpool(t, sp)
			}(c)
		}
		wg.Wait()
		if got := in.opens.Load(); got != 1 {
			t.Fatalf("budget=%d: input opened %d times, want 1 (single-flight)", budget, got)
		}
		for c, got := range results {
			if len(got) != 3000 {
				t.Fatalf("budget=%d consumer %d: %d rows, want 3000", budget, c, len(got))
			}
			for i, v := range got {
				if v != int64(i) {
					t.Fatalf("budget=%d consumer %d: row %d = %d, want %d (replay must preserve arrival order)", budget, c, i, v, i)
				}
			}
		}
		if budget > 0 && env.ctx.Governor().SpilledBytes() == 0 {
			t.Fatalf("4K budget over 3000 rows did not spill the spool")
		}
		env.ctx.CloseSpools()
		if leaks := env.leakedFiles(t); len(leaks) != 0 {
			t.Fatalf("budget=%d: CloseSpools leaked %v", budget, leaks)
		}
	}
}

// TestSpoolCursorSplitsContent drives one consumer's worker clones through
// a shared cursor: every row must reach exactly one clone and the union
// must be the full content — the invariant that lets the parallel planner
// admit spooled subtrees into worker pipelines.
func TestSpoolCursorSplitsContent(t *testing.T) {
	for _, budget := range []int64{0, 4096} {
		env := newSpillEnv(budget)
		in := &genOp{n: 5000}
		cursor := &spoolCursor{}
		const clones = 6
		var wg sync.WaitGroup
		parts := make([][]int64, clones)
		for c := 0; c < clones; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				sp := &SpoolOp{ID: 3, Input: in, Ctx: env.ctx, Cursor: cursor}
				parts[c] = drainSpool(t, sp)
			}(c)
		}
		wg.Wait()
		if got := in.opens.Load(); got != 1 {
			t.Fatalf("budget=%d: input opened %d times, want 1", budget, got)
		}
		seen := make(map[int64]int)
		total := 0
		for _, part := range parts {
			total += len(part)
			for _, v := range part {
				seen[v]++
			}
		}
		if total != 5000 {
			t.Fatalf("budget=%d: clones saw %d rows total, want 5000 (each row exactly once)", budget, total)
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("budget=%d: row %d delivered %d times", budget, v, n)
			}
		}
		env.ctx.CloseSpools()
		if leaks := env.leakedFiles(t); len(leaks) != 0 {
			t.Fatalf("budget=%d: leaked %v", budget, leaks)
		}
	}
}
