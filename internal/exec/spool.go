// Shared-work spool (paper §4.5), memory-governed and concurrency-safe.
//
// A sharedSpool materializes one shared subtree exactly once per query —
// single-flight through sync.Once, so concurrent consumers (serial plan
// siblings or parallel worker clones) block until the winner publishes —
// and replays the result to every consumer. The replay buffer is budgeted:
// rows account against the query governor as they materialize, and a
// denied reservation flushes them to arrival-order run files on the DFS
// scratch directory. After publication the state is immutable (resident
// tail plus write-once run files), which is what makes per-consumer
// replays safe without locks.
//
// Two consumption modes share the materialization:
//
//   - Replay: a plan-level consumer streams the full content through its
//     own cursor (every consumer sees every row).
//   - Cursor: the worker clones of ONE parallelized consumer split the
//     content morsel-style through a shared spoolCursor — each batch goes
//     to exactly one clone, so the clones' merged output equals a single
//     full replay. This is what lets clonable() admit spooled subtrees
//     into worker pipelines.
package exec

import (
	"sync"

	"repro/internal/types"
	"repro/internal/vector"
)

// sharedSpool is the per-query state of one spool id: single-flight
// materialization, then immutable published content.
type sharedSpool struct {
	once sync.Once
	err  error

	// store is the governed arrival-order content (mem.go), immutable
	// after once completes.
	store   *rowStore
	ts      []types.T
	cleanup sync.Once
}

// sharedSpool returns (creating on first use) the query-wide state for a
// spool id. Safe for concurrent use by parallel worker clones.
func (c *Context) sharedSpool(id int) *sharedSpool {
	c.spoolMu.Lock()
	defer c.spoolMu.Unlock()
	if c.spools == nil {
		c.spools = make(map[int]*sharedSpool)
	}
	sp := c.spools[id]
	if sp == nil {
		sp = &sharedSpool{}
		c.spools[id] = sp
	}
	return sp
}

// materialize drains the input exactly once, whoever gets here first; the
// rest block until the content is published. The input operator is owned
// by the winner for the duration — consumers never touch it otherwise.
func (sp *sharedSpool) materialize(in Operator, ctx *Context) error {
	sp.once.Do(func() { sp.err = sp.run(in, ctx) })
	return sp.err
}

func (sp *sharedSpool) run(in Operator, ctx *Context) error {
	sp.store = newRowStore(ctx, "spool", "spool")
	sp.ts = in.Types()
	if err := in.Open(); err != nil {
		return err
	}
	defer in.Close()
	for {
		if err := ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := sp.store.appendBatch(b); err != nil {
			return err
		}
	}
}

// replay returns a fresh pull over the full content: the spilled runs in
// arrival order, then the resident tail. Each consumer holds its own
// readers, so concurrent replays never share mutable state.
func (sp *sharedSpool) replay() func() (*vector.Batch, error) {
	return sp.store.replay(sp.ts)
}

// release removes the spill runs and returns the reservation, exactly
// once. Spool lifetime is the query, not any one consumer — a join build
// side closes long before the probe side replays — so this runs from
// Context.CloseSpools after the whole tree has closed, never from a
// consumer's Close; the query-level scratch sweep remains the backstop.
func (sp *sharedSpool) release() {
	sp.cleanup.Do(func() { sp.store.close() })
}

// spoolCursor splits one spool's content across the worker clones of a
// single parallelized consumer: each next() hands out the stream's next
// batch under a mutex, so every batch reaches exactly one clone.
type spoolCursor struct {
	mu   sync.Mutex
	pull func() (*vector.Batch, error)
}

func (c *spoolCursor) next(sp *sharedSpool) (*vector.Batch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pull == nil {
		c.pull = sp.replay()
	}
	return c.pull()
}

// SpoolOp is one consumer of a shared materialization (shared work
// optimizer, paper §4.5). Materialization is deferred to the first Next so
// runtime semijoin reducers inside the shared subtree are not pulled
// before their build sides have run.
type SpoolOp struct {
	ID    int
	Input Operator
	Ctx   *Context
	// Cursor, when set by the parallel planner, switches this consumer's
	// clones to split consumption: the clones share the cursor and their
	// merged output equals one full replay.
	Cursor *spoolCursor

	ts   []types.T
	sp   *sharedSpool
	pull func() (*vector.Batch, error)
}

// Types implements Operator. The schema is resolved once and carried to
// clones, so concurrent workers never race on a memoizing Input.Types.
func (s *SpoolOp) Types() []types.T {
	if s.ts == nil {
		s.ts = s.Input.Types()
	}
	return s.ts
}

// Open implements Operator.
func (s *SpoolOp) Open() error {
	s.sp = s.Ctx.sharedSpool(s.ID)
	s.pull = nil
	return nil
}

// Next implements Operator.
func (s *SpoolOp) Next() (*vector.Batch, error) {
	if err := s.sp.materialize(s.Input, s.Ctx); err != nil {
		return nil, err
	}
	if s.Cursor != nil {
		return s.Cursor.next(s.sp)
	}
	if s.pull == nil {
		s.pull = s.sp.replay()
	}
	return s.pull()
}

// Close implements Operator. The shared materialization intentionally
// survives this consumer: other consumers elsewhere in the plan may not
// have replayed yet. Context.CloseSpools reclaims it at query end.
//lint:ignore close-and-cancel spool lifetime is the query, not this consumer; Context.CloseSpools closes the shared input exactly once
func (s *SpoolOp) Close() error {
	s.pull = nil
	return nil
}

// CloseSpools releases every shared spool — reservations returned, spill
// runs removed. Runners call it once per query after the operator tree has
// fully closed.
func (c *Context) CloseSpools() {
	c.spoolMu.Lock()
	spools := c.spools
	c.spools = nil
	c.spoolMu.Unlock()
	for _, sp := range spools {
		sp.release()
	}
}
