package exec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// CompiledExpr is an executable expression over vector batches. Evaluation
// is column-at-a-time with typed fast paths for arithmetic and comparisons
// (the vectorized execution model of [39] that §5.1 builds on), falling
// back to row-wise datum evaluation for rich operators (CASE, LIKE, CAST).
type CompiledExpr struct {
	T    types.T
	eval func(b *vector.Batch) (*vector.Vector, error)
	// col+1 of a bare column reference, 0 otherwise: the property planner
	// matches group/join keys against delivered partitioning columns
	// through this marker, since the closure itself is opaque.
	colRef int
}

// Eval computes the expression for the batch's live rows. Positions not in
// the selection are undefined.
func (e *CompiledExpr) Eval(b *vector.Batch) (*vector.Vector, error) { return e.eval(b) }

// ColRef reports the input ordinal when the expression is a bare column
// reference (the only shape whose output provenance is exact).
func (e *CompiledExpr) ColRef() (int, bool) {
	if e == nil || e.colRef == 0 {
		return -1, false
	}
	return e.colRef - 1, true
}

// EvalPredicate evaluates a boolean expression and returns the physical
// indexes of live rows where it is TRUE (SQL ternary: NULL filters out).
func EvalPredicate(e *CompiledExpr, b *vector.Batch) ([]int, error) {
	v, err := e.eval(b)
	if err != nil {
		return nil, err
	}
	sel := make([]int, 0, b.N)
	for i := 0; i < b.N; i++ {
		r := b.RowIdx(i)
		if !v.IsNull(r) && v.I64[r] != 0 {
			sel = append(sel, r)
		}
	}
	return sel, nil
}

// Compile turns a resolved plan expression into an executable one.
// inTypes is the input row type (used only for validation).
func Compile(r plan.Rex, inTypes []types.T) (*CompiledExpr, error) {
	switch x := r.(type) {
	case *plan.ColRef:
		if x.Idx < 0 || (inTypes != nil && x.Idx >= len(inTypes)) {
			return nil, fmt.Errorf("exec: column reference $%d out of range (%d cols)", x.Idx, len(inTypes))
		}
		idx := x.Idx
		return &CompiledExpr{T: x.T, colRef: idx + 1, eval: func(b *vector.Batch) (*vector.Vector, error) {
			return b.Cols[idx], nil
		}}, nil
	case *plan.Literal:
		d := x.Val
		t := x.T
		return &CompiledExpr{T: t, eval: func(b *vector.Batch) (*vector.Vector, error) {
			out := vector.New(t, b.Capacity())
			for i := 0; i < b.N; i++ {
				out.Set(b.RowIdx(i), d)
			}
			return out, nil
		}}, nil
	case *plan.Func:
		return compileFunc(x, inTypes)
	}
	return nil, fmt.Errorf("exec: cannot compile %T", r)
}

// CompileAll compiles a slice of expressions.
func CompileAll(rs []plan.Rex, inTypes []types.T) ([]*CompiledExpr, error) {
	out := make([]*CompiledExpr, len(rs))
	for i, r := range rs {
		e, err := Compile(r, inTypes)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func compileFunc(f *plan.Func, inTypes []types.T) (*CompiledExpr, error) {
	args := make([]*CompiledExpr, len(f.Args))
	for i, a := range f.Args {
		c, err := Compile(a, inTypes)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	op := f.Op
	t := f.T
	switch {
	case op == "+" || op == "-" || op == "*" || op == "/" || op == "%":
		return compileArith(op, t, args)
	case op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" || op == ">=":
		return compileCompare(op, args)
	case op == "and" || op == "or":
		return compileLogical(op, args)
	case op == "not":
		return compileNot(args[0])
	case op == "isnull" || op == "isnotnull":
		want := op == "isnull"
		a := args[0]
		return &CompiledExpr{T: types.TBool, eval: func(b *vector.Batch) (*vector.Vector, error) {
			v, err := a.eval(b)
			if err != nil {
				return nil, err
			}
			out := vector.New(types.TBool, b.Capacity())
			for i := 0; i < b.N; i++ {
				r := b.RowIdx(i)
				if v.IsNull(r) == want {
					out.I64[r] = 1
				} else {
					out.I64[r] = 0
				}
			}
			return out, nil
		}}, nil
	case op == "in":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(types.Boolean), nil
			}
			sawNull := false
			for _, v := range vals[1:] {
				if v.Null {
					sawNull = true
					continue
				}
				if vals[0].Compare(v) == 0 {
					return types.NewBool(true), nil
				}
			}
			if sawNull {
				return types.NullOf(types.Boolean), nil
			}
			return types.NewBool(false), nil
		})
	case op == "like":
		return compileLike(args)
	case op == "case":
		return compileCase(t, args)
	case strings.HasPrefix(op, "cast:"):
		target, err := types.ParseType(op[5:])
		if err != nil {
			return nil, err
		}
		return rowwise(target, args, func(vals []types.Datum) (types.Datum, error) {
			return types.Cast(vals[0], target)
		})
	case strings.HasPrefix(op, "extract:"):
		field := op[8:]
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(types.Int64), nil
			}
			v, err := types.DateField(vals[0], field)
			if err != nil {
				return types.Datum{}, err
			}
			return types.NewBigint(v), nil
		})
	case op == "coalesce":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			for _, v := range vals {
				if !v.Null {
					return types.Cast(v, t)
				}
			}
			return types.NullOf(t.Kind), nil
		})
	case op == "nullif":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			if !vals[0].Null && !vals[1].Null && vals[0].Compare(vals[1]) == 0 {
				return types.NullOf(t.Kind), nil
			}
			return vals[0], nil
		})
	case op == "if":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			if !vals[0].Null && vals[0].I != 0 {
				return types.Cast(vals[1], t)
			}
			return types.Cast(vals[2], t)
		})
	case op == "neg":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(t.Kind), nil
			}
			switch vals[0].K {
			case types.Float64:
				return types.NewDouble(-vals[0].F), nil
			case types.Decimal:
				return types.NewDecimal(-vals[0].I, vals[0].DecimalScale()), nil
			default:
				return types.Datum{K: vals[0].K, I: -vals[0].I}, nil
			}
		})
	case op == "concat":
		return rowwise(types.TString, args, func(vals []types.Datum) (types.Datum, error) {
			var sb strings.Builder
			for _, v := range vals {
				if v.Null {
					return types.NullOf(types.String), nil
				}
				sb.WriteString(v.String())
			}
			return types.NewString(sb.String()), nil
		})
	case op == "substr":
		return rowwise(types.TString, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null || vals[1].Null {
				return types.NullOf(types.String), nil
			}
			s := vals[0].S
			start := int(vals[1].I)
			if start > 0 {
				start--
			} else if start < 0 {
				start = len(s) + start
			}
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				return types.NewString(""), nil
			}
			end := len(s)
			if len(vals) == 3 && !vals[2].Null {
				if n := int(vals[2].I); start+n < end {
					end = start + n
				}
			}
			return types.NewString(s[start:end]), nil
		})
	case op == "upper" || op == "lower" || op == "trim":
		fn := strings.ToUpper
		if op == "lower" {
			fn = strings.ToLower
		} else if op == "trim" {
			fn = strings.TrimSpace
		}
		return rowwise(types.TString, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(types.String), nil
			}
			return types.NewString(fn(vals[0].S)), nil
		})
	case op == "length":
		return rowwise(types.TBigint, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(types.Int64), nil
			}
			return types.NewBigint(int64(len(vals[0].S))), nil
		})
	case op == "abs":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			v := vals[0]
			if v.Null {
				return v, nil
			}
			switch v.K {
			case types.Float64:
				return types.NewDouble(math.Abs(v.F)), nil
			default:
				if v.I < 0 {
					v.I = -v.I
				}
				return v, nil
			}
		})
	case op == "floor" || op == "ceil" || op == "ceiling":
		fn := math.Floor
		if op != "floor" {
			fn = math.Ceil
		}
		return rowwise(types.TBigint, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(types.Int64), nil
			}
			return types.NewBigint(int64(fn(vals[0].Float()))), nil
		})
	case op == "round":
		return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
			if vals[0].Null {
				return types.NullOf(t.Kind), nil
			}
			digits := 0
			if len(vals) == 2 && !vals[1].Null {
				digits = int(vals[1].I)
			}
			p := math.Pow10(digits)
			f := math.Round(vals[0].Float()*p) / p
			if t.Kind == types.Float64 {
				return types.NewDouble(f), nil
			}
			return types.Cast(types.NewDouble(f), t)
		})
	case op == "grouping":
		return rowwise(types.TBigint, args, func(vals []types.Datum) (types.Datum, error) {
			gid, pos := vals[0].I, vals[1].I
			return types.NewBigint((gid >> uint(pos)) & 1), nil
		})
	case op == "rand":
		// The compiled expression may be shared by parallel worker
		// pipelines; rand.Rand is not goroutine-safe.
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		return &CompiledExpr{T: types.TDouble, eval: func(b *vector.Batch) (*vector.Vector, error) {
			out := vector.New(types.TDouble, b.Capacity())
			mu.Lock()
			for i := 0; i < b.N; i++ {
				out.F64[b.RowIdx(i)] = rng.Float64()
			}
			mu.Unlock()
			return out, nil
		}}, nil
	case op == "current_date":
		days := time.Now().UTC().Unix() / 86400
		lit := &plan.Literal{Val: types.NewDate(days), T: types.TDate}
		return Compile(lit, inTypes)
	case op == "current_timestamp":
		us := time.Now().UTC().UnixMicro()
		lit := &plan.Literal{Val: types.NewTimestamp(us), T: types.TTimestamp}
		return Compile(lit, inTypes)
	}
	return nil, fmt.Errorf("exec: unknown function %q", op)
}

// rowwise builds a datum-at-a-time evaluator over the live rows.
func rowwise(t types.T, args []*CompiledExpr, fn func([]types.Datum) (types.Datum, error)) (*CompiledExpr, error) {
	return &CompiledExpr{T: t, eval: func(b *vector.Batch) (*vector.Vector, error) {
		cols := make([]*vector.Vector, len(args))
		for i, a := range args {
			v, err := a.eval(b)
			if err != nil {
				return nil, err
			}
			cols[i] = v
		}
		out := vector.New(t, b.Capacity())
		vals := make([]types.Datum, len(args))
		for i := 0; i < b.N; i++ {
			r := b.RowIdx(i)
			for j, c := range cols {
				vals[j] = c.Get(r)
			}
			d, err := fn(vals)
			if err != nil {
				return nil, err
			}
			out.Set(r, d)
		}
		return out, nil
	}}, nil
}

func compileArith(op string, t types.T, args []*CompiledExpr) (*CompiledExpr, error) {
	l, r := args[0], args[1]
	// Fast path: both operands already share the result's representation.
	if t.Kind == types.Int64 && intRepr(l.T) && intRepr(r.T) && op != "/" {
		return &CompiledExpr{T: t, eval: func(b *vector.Batch) (*vector.Vector, error) {
			lv, err := l.eval(b)
			if err != nil {
				return nil, err
			}
			rv, err := r.eval(b)
			if err != nil {
				return nil, err
			}
			out := vector.New(t, b.Capacity())
			for i := 0; i < b.N; i++ {
				p := b.RowIdx(i)
				if lv.IsNull(p) || rv.IsNull(p) {
					out.SetNull(p)
					continue
				}
				a, c := lv.I64[p], rv.I64[p]
				switch op {
				case "+":
					out.I64[p] = a + c
				case "-":
					out.I64[p] = a - c
				case "*":
					out.I64[p] = a * c
				case "%":
					if c == 0 {
						out.SetNull(p)
					} else {
						out.I64[p] = a % c
					}
				}
			}
			return out, nil
		}}, nil
	}
	if t.Kind == types.Float64 && l.T.Kind == types.Float64 && r.T.Kind == types.Float64 {
		return &CompiledExpr{T: t, eval: func(b *vector.Batch) (*vector.Vector, error) {
			lv, err := l.eval(b)
			if err != nil {
				return nil, err
			}
			rv, err := r.eval(b)
			if err != nil {
				return nil, err
			}
			out := vector.New(t, b.Capacity())
			for i := 0; i < b.N; i++ {
				p := b.RowIdx(i)
				if lv.IsNull(p) || rv.IsNull(p) {
					out.SetNull(p)
					continue
				}
				a, c := lv.F64[p], rv.F64[p]
				switch op {
				case "+":
					out.F64[p] = a + c
				case "-":
					out.F64[p] = a - c
				case "*":
					out.F64[p] = a * c
				case "/":
					if c == 0 {
						out.SetNull(p)
					} else {
						out.F64[p] = a / c
					}
				case "%":
					out.F64[p] = math.Mod(a, c)
				}
			}
			return out, nil
		}}, nil
	}
	// General path through datum arithmetic (decimals, temporals, mixes).
	o := op[0]
	return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
		d, err := types.Arith(o, vals[0], vals[1])
		if err != nil {
			return types.Datum{}, err
		}
		return types.Cast(d, t)
	})
}

func intRepr(t types.T) bool {
	switch t.Kind {
	case types.Int32, types.Int64, types.Boolean:
		return true
	}
	return false
}

func compileCompare(op string, args []*CompiledExpr) (*CompiledExpr, error) {
	l, r := args[0], args[1]
	cmpOK := func(c int) bool {
		switch op {
		case "=":
			return c == 0
		case "<>":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		default:
			return c >= 0
		}
	}
	// Fast paths for matching representations.
	if intRepr(l.T) && intRepr(r.T) || l.T.Kind == r.T.Kind && (l.T.Kind == types.Date || l.T.Kind == types.Timestamp) ||
		(l.T.Kind == types.Decimal && r.T.Kind == types.Decimal && l.T.Scale == r.T.Scale) {
		return &CompiledExpr{T: types.TBool, eval: func(b *vector.Batch) (*vector.Vector, error) {
			lv, err := l.eval(b)
			if err != nil {
				return nil, err
			}
			rv, err := r.eval(b)
			if err != nil {
				return nil, err
			}
			out := vector.New(types.TBool, b.Capacity())
			for i := 0; i < b.N; i++ {
				p := b.RowIdx(i)
				if lv.IsNull(p) || rv.IsNull(p) {
					out.SetNull(p)
					continue
				}
				c := 0
				switch {
				case lv.I64[p] < rv.I64[p]:
					c = -1
				case lv.I64[p] > rv.I64[p]:
					c = 1
				}
				if cmpOK(c) {
					out.I64[p] = 1
				}
			}
			return out, nil
		}}, nil
	}
	if l.T.Kind == types.String && r.T.Kind == types.String {
		return &CompiledExpr{T: types.TBool, eval: func(b *vector.Batch) (*vector.Vector, error) {
			lv, err := l.eval(b)
			if err != nil {
				return nil, err
			}
			rv, err := r.eval(b)
			if err != nil {
				return nil, err
			}
			out := vector.New(types.TBool, b.Capacity())
			for i := 0; i < b.N; i++ {
				p := b.RowIdx(i)
				if lv.IsNull(p) || rv.IsNull(p) {
					out.SetNull(p)
					continue
				}
				if cmpOK(strings.Compare(lv.Str[p], rv.Str[p])) {
					out.I64[p] = 1
				}
			}
			return out, nil
		}}, nil
	}
	return rowwise(types.TBool, args, func(vals []types.Datum) (types.Datum, error) {
		if vals[0].Null || vals[1].Null {
			return types.NullOf(types.Boolean), nil
		}
		return types.NewBool(cmpOK(vals[0].Compare(vals[1]))), nil
	})
}

func compileLogical(op string, args []*CompiledExpr) (*CompiledExpr, error) {
	l, r := args[0], args[1]
	isAnd := op == "and"
	return &CompiledExpr{T: types.TBool, eval: func(b *vector.Batch) (*vector.Vector, error) {
		lv, err := l.eval(b)
		if err != nil {
			return nil, err
		}
		rv, err := r.eval(b)
		if err != nil {
			return nil, err
		}
		out := vector.New(types.TBool, b.Capacity())
		for i := 0; i < b.N; i++ {
			p := b.RowIdx(i)
			ln, rn := lv.IsNull(p), rv.IsNull(p)
			lt := !ln && lv.I64[p] != 0
			rt := !rn && rv.I64[p] != 0
			if isAnd {
				switch {
				case !ln && !lt, !rn && !rt:
					out.I64[p] = 0
				case ln || rn:
					out.SetNull(p)
				default:
					out.I64[p] = 1
				}
			} else {
				switch {
				case lt || rt:
					out.I64[p] = 1
				case ln || rn:
					out.SetNull(p)
				default:
					out.I64[p] = 0
				}
			}
		}
		return out, nil
	}}, nil
}

func compileNot(a *CompiledExpr) (*CompiledExpr, error) {
	return &CompiledExpr{T: types.TBool, eval: func(b *vector.Batch) (*vector.Vector, error) {
		v, err := a.eval(b)
		if err != nil {
			return nil, err
		}
		out := vector.New(types.TBool, b.Capacity())
		for i := 0; i < b.N; i++ {
			p := b.RowIdx(i)
			if v.IsNull(p) {
				out.SetNull(p)
				continue
			}
			if v.I64[p] == 0 {
				out.I64[p] = 1
			}
		}
		return out, nil
	}}, nil
}

// likeMatcher compiles a SQL LIKE pattern ('%' any run, '_' one char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern segments.
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pattern) {
			switch pattern[pi] {
			case '%':
				for pi < len(pattern) && pattern[pi] == '%' {
					pi++
				}
				if pi == len(pattern) {
					return true
				}
				for k := si; k <= len(s); k++ {
					if match(k, pi) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(s) || s[si] != pattern[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return match(0, 0)
}

func compileLike(args []*CompiledExpr) (*CompiledExpr, error) {
	return rowwise(types.TBool, args, func(vals []types.Datum) (types.Datum, error) {
		if vals[0].Null || vals[1].Null {
			return types.NullOf(types.Boolean), nil
		}
		return types.NewBool(likeMatch(vals[0].S, vals[1].S)), nil
	})
}

func compileCase(t types.T, args []*CompiledExpr) (*CompiledExpr, error) {
	hasElse := len(args)%2 == 1
	return rowwise(t, args, func(vals []types.Datum) (types.Datum, error) {
		pairs := len(vals) / 2
		for i := 0; i < pairs*2; i += 2 {
			if c := vals[i]; !c.Null && c.I != 0 {
				return types.Cast(vals[i+1], t)
			}
		}
		if hasElse {
			return types.Cast(vals[len(vals)-1], t)
		}
		return types.NullOf(t.Kind), nil
	})
}

// EvalConst evaluates a constant (input-free, deterministic) expression at
// plan time, for the optimizer's constant folding. Returns false when the
// expression references inputs, is nondeterministic, or fails to evaluate.
func EvalConst(r plan.Rex) (types.Datum, bool) {
	if nondeterministic(r) {
		return types.Datum{}, false
	}
	bits := map[int]bool{}
	plan.InputBits(r, bits)
	if len(bits) > 0 {
		return types.Datum{}, false
	}
	e, err := Compile(r, nil)
	if err != nil {
		return types.Datum{}, false
	}
	// Evaluate over a one-row scratch batch (the dummy column only
	// provides row capacity).
	scratch := vector.NewBatch([]types.T{types.TBool}, 1)
	scratch.N = 1
	v, err := e.Eval(scratch)
	if err != nil {
		return types.Datum{}, false
	}
	return v.Get(0), true
}

func nondeterministic(r plan.Rex) bool {
	f, ok := r.(*plan.Func)
	if !ok {
		return false
	}
	switch f.Op {
	case "rand", "current_date", "current_timestamp":
		return true
	}
	for _, a := range f.Args {
		if nondeterministic(a) {
			return true
		}
	}
	return false
}
