// Sorting operators: memory-governed external sort (ORDER BY), bounded-heap
// TopN (ORDER BY + LIMIT [OFFSET]) and the row comparator they share with
// the parallel merge exchange (merge.go). Under a parallel plan each worker
// produces a locally sorted run with these same operators, so the
// comparator must be identical across the serial sort, the per-worker runs
// and the k-way merge for parallel ORDER BY to reproduce serial output
// exactly.
//
// SortOp is beyond-memory capable: rows are accounted against the query's
// memory governor, and when a reservation is denied the accumulated rows
// stable-sort into a run spilled to the DFS scratch directory. The drain
// then merges the file-backed runs and the in-memory remainder through the
// same loser tree the parallel merge uses. Runs spill in arrival order and
// ties break toward the lower run index, so the merged output reproduces
// the in-memory stable sort byte for byte.
package exec

import (
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// compareKey orders two datums under one sort key: negative when x comes
// first. NULLS FIRST puts NULL before non-NULL regardless of direction.
// It is the single ordering definition shared by SortOp, the TopN heaps,
// the loser-tree merge and the parallel planner's sorted-run workers.
func compareKey(k plan.SortKey, x, y types.Datum) int {
	if x.Null || y.Null {
		if x.Null && y.Null {
			return 0
		}
		first := -1
		if !k.NullsFirst {
			first = 1
		}
		if x.Null {
			return first
		}
		return -first
	}
	c := x.Compare(y)
	if k.Desc {
		return -c
	}
	return c
}

// sortCompare builds the 3-way row comparator for a key set; a single call
// answers both orderings, which the heaps and the loser tree need to
// detect ties without comparing twice.
func sortCompare(keys []plan.SortKey) func(a, b []types.Datum) int {
	return func(a, b []types.Datum) int {
		for _, k := range keys {
			if c := compareKey(k, a[k.Col], b[k.Col]); c != 0 {
				return c
			}
		}
		return 0
	}
}

// sortCompareAt is sortCompare over batch rows in place — the allocation-
// free form for the merge's hot loop (Batch.Row materializes a datum slice
// per call and is documented as not for hot loops).
func sortCompareAt(keys []plan.SortKey) func(ab *vector.Batch, ai int, bb *vector.Batch, bi int) int {
	return func(ab *vector.Batch, ai int, bb *vector.Batch, bi int) int {
		ar, br := ab.RowIdx(ai), bb.RowIdx(bi)
		for _, k := range keys {
			if c := compareKey(k, ab.Cols[k.Col].Get(ar), bb.Cols[k.Col].Get(br)); c != 0 {
				return c
			}
		}
		return 0
	}
}

func sortLess(keys []plan.SortKey) func(a, b []types.Datum) bool {
	cmp := sortCompare(keys)
	return func(a, b []types.Datum) bool { return cmp(a, b) < 0 }
}

func sortRows(rows [][]types.Datum, keys []plan.SortKey) {
	stableSort(rows, sortLess(keys))
}

// stableSort is a merge sort keeping input order for equal keys.
func stableSort(rows [][]types.Datum, less func(a, b []types.Datum) bool) {
	if len(rows) < 2 {
		return
	}
	tmp := make([][]types.Datum, len(rows))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if less(rows[j], rows[i]) {
				tmp[k] = rows[j]
				j++
			} else {
				tmp[k] = rows[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = rows[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = rows[j]
			j++
			k++
		}
		copy(rows[lo:hi], tmp[lo:hi])
	}
	ms(0, len(rows))
}

// emitRows renders rows starting at ordinal start into a batch, or nil when
// exhausted (shared emission loop of the materializing operators).
func emitRows(rows [][]types.Datum, start int, ts []types.T) *vector.Batch {
	if start >= len(rows) {
		return nil
	}
	n := len(rows) - start
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	out := vector.NewBatch(ts, n)
	for i := 0; i < n; i++ {
		for c, d := range rows[start+i] {
			out.Cols[c].Set(i, d)
		}
	}
	out.N = n
	return out
}

// dropOffset discards the first off rows (OFFSET), tolerating an offset
// past end of result.
func dropOffset(rows [][]types.Datum, off int64) [][]types.Datum {
	if off <= 0 {
		return rows
	}
	if off >= int64(len(rows)) {
		return nil
	}
	return rows[off:]
}

// SortOp materializes and orders its input, spilling sorted runs to the
// scratch directory when the memory governor denies growth. Under a
// parallel plan the planner clones it below the merge exchange, one locally
// sorted run per worker (paper §5.1: every relational operator runs on the
// executor slots, the coordinator only merges) — each clone accounts and
// spills independently against the shared governor.
type SortOp struct {
	Input Operator
	Keys  []plan.SortKey
	// Ctx supplies the memory governor and spill target; nil means
	// ungoverned in-memory sorting (operator trees built outside a query).
	Ctx *Context

	rows    [][]types.Datum
	sorted  bool
	emitted int
	res     *Reservation
	runs    []string // spilled run files, in arrival order
	lt      *loserTree
}

// Types implements Operator.
func (s *SortOp) Types() []types.T { return s.Input.Types() }

// Open implements Operator.
func (s *SortOp) Open() error {
	s.rows, s.sorted, s.emitted = nil, false, 0
	s.runs, s.lt = nil, nil
	s.res = s.Ctx.Governor().Reserve("sort")
	return s.Input.Open()
}

// spillRun stable-sorts the accumulated rows into a run file and frees
// their memory. Runs are written in arrival order, which the drain's
// tie-break exploits to reproduce the stable in-memory sort.
func (s *SortOp) spillRun() error {
	sortRows(s.rows, s.Keys)
	path, err := writeRunFile(s.Ctx, "sort_run", s.rows)
	if err != nil {
		return err
	}
	s.runs = append(s.runs, path)
	s.rows = nil
	s.res.Release()
	return nil
}

// consume drains the input, accounting batch by batch and spilling a run
// whenever the governor denies the reservation.
func (s *SortOp) consume() error {
	for {
		if err := s.Ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := s.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		var sz int64
		for i := 0; i < b.N; i++ {
			row := b.Row(i)
			s.rows = append(s.rows, row)
			sz += rowBytes(row)
		}
		if s.res.Grow(sz) {
			continue
		}
		// The rows are resident either way; take the bytes, then cut a run
		// if enough has accumulated. Without a scratch directory the
		// budget is observable but not enforceable here.
		s.res.ForceGrow(sz)
		if _, ok := s.Ctx.spillTarget(); !ok || !s.res.ShouldSpill() {
			continue
		}
		if err := s.spillRun(); err != nil {
			return err
		}
	}
}

// Next implements Operator.
func (s *SortOp) Next() (*vector.Batch, error) {
	if !s.sorted {
		if err := s.consume(); err != nil {
			return nil, err
		}
		sortRows(s.rows, s.Keys)
		if len(s.runs) > 0 {
			// External drain: merge the file-backed runs and the in-memory
			// remainder. The remainder holds the latest-arrived rows, so it
			// takes the highest run index — ties resolve toward earlier
			// arrival, exactly like the stable in-memory sort.
			fs, _ := s.Ctx.spillTarget()
			cursors := make([]*runCursor, 0, len(s.runs)+1)
			for _, path := range s.runs {
				cursors = append(cursors, fileRunCursor(fs, path, s.Types()))
			}
			if len(s.rows) > 0 {
				cursors = append(cursors, memRunCursor(s.rows, s.Types()))
			}
			for _, c := range cursors {
				if !c.advance() && c.err != nil {
					return nil, c.err
				}
			}
			s.lt = newLoserTree(cursors, sortCompareAt(s.Keys))
		}
		s.sorted = true
	}
	if s.lt != nil {
		return s.lt.emit(s.Types(), nil)
	}
	out := emitRows(s.rows, s.emitted, s.Types())
	if out == nil {
		return nil, nil
	}
	s.emitted += out.N
	return out, nil
}

// Close implements Operator. Spilled run files are removed here, so a
// query that closes its operators — normally or mid-error — leaves no
// scratch files behind.
func (s *SortOp) Close() error {
	if fs, ok := s.Ctx.spillTarget(); ok {
		for _, path := range s.runs {
			fs.Remove(path, false)
		}
	}
	s.rows, s.runs, s.lt = nil, nil, nil
	s.res.Release()
	return s.Input.Close()
}

// topNHeap is a bounded max-heap keeping the limit smallest rows under a
// key comparator. Ties order by arrival: the heap both evicts latest-among-
// equals and sorts earliest-first, so its output matches a stable sort
// truncated to the limit — serial TopN results are unchanged by the heap.
type topNHeap struct {
	limit   int64
	cmp     func(a, b []types.Datum) int
	rows    [][]types.Datum
	seqs    []int64
	nextSeq int64
}

func newTopNHeap(keys []plan.SortKey, limit int64) *topNHeap {
	return &topNHeap{limit: limit, cmp: sortCompare(keys)}
}

// before reports whether row (a, seqA) orders ahead of (b, seqB): by the
// sort keys, then by arrival order.
func (h *topNHeap) before(a []types.Datum, seqA int64, b []types.Datum, seqB int64) bool {
	if c := h.cmp(a, b); c != 0 {
		return c < 0
	}
	return seqA < seqB
}

// beforeAt compares heap slots.
func (h *topNHeap) beforeAt(i, j int) bool {
	return h.before(h.rows[i], h.seqs[i], h.rows[j], h.seqs[j])
}

// push offers a row; when the heap is full it replaces the current worst
// row if the offer orders ahead of it, else drops the offer.
func (h *topNHeap) push(row []types.Datum) {
	if h.limit <= 0 {
		return
	}
	seq := h.nextSeq
	h.nextSeq++
	if int64(len(h.rows)) < h.limit {
		h.rows = append(h.rows, row)
		h.seqs = append(h.seqs, seq)
		h.up(len(h.rows) - 1)
		return
	}
	if h.before(row, seq, h.rows[0], h.seqs[0]) {
		h.rows[0], h.seqs[0] = row, seq
		h.down(0, len(h.rows))
	}
}

func (h *topNHeap) swap(i, j int) {
	h.rows[i], h.rows[j] = h.rows[j], h.rows[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
}

// up restores the max-heap invariant (root = worst kept row) from leaf i.
func (h *topNHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.beforeAt(p, i) {
			h.swap(p, i)
			i = p
			continue
		}
		return
	}
}

// down restores the invariant from node i over the first n slots.
func (h *topNHeap) down(i, n int) {
	for {
		worst := i
		if l := 2*i + 1; l < n && h.beforeAt(worst, l) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.beforeAt(worst, r) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}

// sorted extracts the kept rows in key order (heap sort in place; the heap
// is spent afterwards).
func (h *topNHeap) sorted() [][]types.Datum {
	for n := len(h.rows) - 1; n > 0; n-- {
		h.swap(0, n)
		h.down(0, n)
	}
	return h.rows
}

// TopNOp keeps the (N + Offset) smallest rows under the sort keys in a
// bounded heap instead of a full materialized sort — the physical
// optimization for ORDER BY + LIMIT [OFFSET]. The offset rows are skipped
// at emission. N == 0 short-circuits to EOF without opening or draining
// the input.
type TopNOp struct {
	Input  Operator
	Keys   []plan.SortKey
	N      int64
	Offset int64
	Ctx    *Context

	rows    [][]types.Datum
	done    bool
	emitted int
	opened  bool
}

// Types implements Operator.
func (t *TopNOp) Types() []types.T { return t.Input.Types() }

// Open implements Operator.
func (t *TopNOp) Open() error {
	t.rows, t.emitted = nil, 0
	if t.N <= 0 {
		// LIMIT 0: the input is never opened, let alone drained.
		t.done, t.opened = true, false
		return nil
	}
	t.done, t.opened = false, true
	return t.Input.Open()
}

// consume drains the input into a bounded heap of the N best rows. The
// parallel planner reuses it for per-worker runs (merge.go).
func (t *TopNOp) consume() error {
	h := newTopNHeap(t.Keys, t.N+t.Offset)
	for {
		if err := t.Ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := t.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			h.push(b.Row(i))
		}
	}
	t.rows = dropOffset(h.sorted(), t.Offset)
	return nil
}

// Next implements Operator.
func (t *TopNOp) Next() (*vector.Batch, error) {
	if !t.done {
		if err := t.consume(); err != nil {
			return nil, err
		}
		t.done = true
	}
	out := emitRows(t.rows, t.emitted, t.Types())
	if out == nil {
		return nil, nil
	}
	t.emitted += out.N
	return out, nil
}

// Close implements Operator.
func (t *TopNOp) Close() error {
	t.rows = nil
	if !t.opened {
		return nil
	}
	return t.Input.Close()
}
