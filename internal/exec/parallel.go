// Morsel-driven parallel execution (paper §3, §5): query fragments run on
// multiple LLAP executor slots at once. A ParallelOp fans a cloned operator
// pipeline out across worker goroutines that steal table splits from a
// shared queue (the morsel-driven scheduling of Leis et al. that LLAP
// executors embody) and merges result batches through a bounded channel.
// Hash aggregation runs in two phases — thread-local partial aggregates
// merged into a final table, the paper's map-side aggregation — and hash
// join builds are partitioned across workers (join.go).
package exec

import (
	"sync"

	"repro/internal/acid"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// statMerge folds a worker-local row counter into the plan-level counter
// when the parallel operator closes.
type statMerge struct{ from, to *RuntimeStats }

func mergeStats(merges []statMerge) {
	for _, m := range merges {
		m.to.Rows.Add(m.from.Rows.Swap(0))
	}
}

// exchange is the worker lifecycle every parallel exchange operator
// shares: executor-slot acquisition, the first-error latch, cooperative
// shutdown of worker goroutines and slot return. ParallelOp and MergeOp
// embed it so slot accounting and shutdown ordering exist exactly once;
// only where batches go (one shared channel vs one ordered channel per
// run) differs between them.
type exchange struct {
	started bool
	done    chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup
	errMu   sync.Mutex
	err     error
	release func()
	ctx     *Context
}

// reset clears launch state for the Open-after-Close contract.
func (e *exchange) reset() {
	e.started = false
	e.done = nil
	e.stop = sync.Once{}
	e.err = nil
	e.release = nil
}

// grantWorkers borrows executor slots for up to want workers and returns
// how many may run plus the slot release. The coordinator always owns one
// implicit slot, so at least one worker runs even when the pool is
// exhausted; extra workers are granted without blocking. Every parallel
// operator — streaming exchange or two-phase — sizes itself here.
func grantWorkers(ctx *Context, want int) (int, func()) {
	extra, release := want-1, func() {}
	if ctx != nil {
		extra, release = ctx.AcquireExtra(want - 1)
	}
	n := 1 + extra
	if n > want {
		n = want
	}
	return n, release
}

// begin marks the exchange started and borrows slots for up to want
// workers, returning how many may run.
func (e *exchange) begin(ctx *Context, want int) int {
	e.started = true
	e.ctx = ctx
	e.done = make(chan struct{})
	n, release := grantWorkers(ctx, want)
	e.release = release
	return n
}

func (e *exchange) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.stop.Do(func() { close(e.done) })
}

func (e *exchange) firstErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

// shutdown unwinds the worker goroutines — done unblocks any send — waits
// for them, and returns the borrowed slots. Idempotent; a no-op before the
// first Next.
func (e *exchange) shutdown() {
	if !e.started {
		return
	}
	e.stop.Do(func() { close(e.done) })
	e.wg.Wait()
	if e.release != nil {
		e.release()
	}
}

// drainWorker runs one worker pipeline: open, pull batches, hand each to
// send until EOF, error or shutdown (send reports false when the exchange
// is closing). Callers run it on a goroutine they registered with wg.
func (e *exchange) drainWorker(w Operator, send func(*vector.Batch) bool) {
	if err := w.Open(); err != nil {
		e.fail(err)
		return
	}
	for {
		select {
		case <-e.done:
			return
		default:
		}
		if err := e.ctx.CheckCanceled(); err != nil {
			e.fail(err)
			return
		}
		b, err := w.Next()
		if err != nil {
			e.fail(err)
			return
		}
		if b == nil {
			return
		}
		if !send(b) {
			return
		}
	}
}

// closeWorkers tears down every worker pipeline and folds the per-worker
// stat counters back into the plan counters.
func closeWorkers(workers []Operator, merges []statMerge) error {
	var first error
	for _, w := range workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	mergeStats(merges)
	return first
}

// ParallelOp is the generic exchange operator: it runs N worker pipelines
// (clones of one subtree sharing a morsel queue and build tables) on their
// own goroutines and merges their output batches through a bounded channel.
// Batch order across workers is nondeterministic, as in any parallel
// shuffle-less exchange.
type ParallelOp struct {
	Workers []Operator
	Ctx     *Context
	merges  []statMerge

	exchange
	out chan *vector.Batch
}

// Types implements Operator.
func (p *ParallelOp) Types() []types.T { return p.Workers[0].Types() }

// Open implements Operator. Workers are opened on their own goroutines at
// the first Next, so that upstream build sides (runtime filters, join
// hash tables) run before any worker can block on them.
func (p *ParallelOp) Open() error {
	p.reset()
	p.out = nil
	return nil
}

// start acquires executor slots and launches the workers.
func (p *ParallelOp) start() {
	n := p.begin(p.Ctx, len(p.Workers))
	p.out = make(chan *vector.Batch, 2*n)
	for w := 0; w < n; w++ {
		p.wg.Add(1)
		go func(wk Operator) {
			defer p.wg.Done()
			p.drainWorker(wk, p.send)
		}(p.Workers[w])
	}
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
}

func (p *ParallelOp) send(b *vector.Batch) bool {
	select {
	case p.out <- b:
		return true
	case <-p.done:
		return false
	}
}

// Next implements Operator: it merges worker batches in arrival order.
func (p *ParallelOp) Next() (*vector.Batch, error) {
	if !p.started {
		p.start()
	}
	if b, ok := <-p.out; ok {
		return b, nil
	}
	return nil, p.firstErr()
}

// Close implements Operator.
func (p *ParallelOp) Close() error {
	p.shutdown()
	return closeWorkers(p.Workers, p.merges)
}

// ParallelHashAggOp is the two-phase parallel aggregation: each worker
// pipeline feeds a thread-local partial aggregation (the paper's map-side
// aggregation), and the partials merge into one final group table before
// emission. Merging states — not results — keeps AVG, DISTINCT and
// decimal-scale handling exact. Both phases are memory-governed: worker
// partials spill hash-partitioned group files against the shared budget,
// and the coordinator's merge table spills the same way when the combined
// group set does not fit (aggspill.go).
type ParallelHashAggOp struct {
	Workers      []Operator
	GroupExprs   []*CompiledExpr
	Aggs         []CompiledAgg
	GroupingSets [][]int
	Out          []types.T
	Ctx          *Context
	Stats        *RuntimeStats
	merges       []statMerge

	// Disjoint marks partition-wise placement (props.go): the group keys
	// cover the base scan's partition columns and splits are whole
	// directories, so no two workers ever hold partials of the same group
	// — the final merge appends without hash lookups.
	Disjoint bool

	sink   *spillAggTable
	locals []*HashAggOp
	done   bool

	// spilledMode drives the partition-aligned drain: when any worker
	// partial spilled, the final merge processes one hash partition of
	// every partial at a time instead of folding whole partials into one
	// coordinator table (which would just re-spill what the workers
	// already wrote).
	spilledMode bool
	partIdx     int
	partTable   *groupTable
	partEmit    int
}

// Types implements Operator.
func (a *ParallelHashAggOp) Types() []types.T { return a.Out }

// Open implements Operator. Worker pipelines open on their goroutines.
func (a *ParallelHashAggOp) Open() error {
	a.sink = newSpillAggTable(a.Ctx, a.Aggs, len(a.GroupExprs))
	a.locals = nil
	a.done, a.spilledMode = false, false
	a.partIdx, a.partTable, a.partEmit = 0, nil, 0
	return nil
}

// runPhased is the first phase of the two-phase operators (thread-local
// partials, then a merge): it runs fn(w) for each of up to want workers on
// its own goroutine — capped by the slots AcquireExtra grants — and
// returns the first error. Workers beyond the cap never run; they hold no
// state, since every pipeline steals from the shared morsel queue.
func runPhased(ctx *Context, want int, fn func(w int) error) error {
	n, release := grantWorkers(ctx, want)
	defer release()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// run executes the first phase (parallel partial aggregation) and, when
// nothing spilled, the in-memory merge (worker 0's groups first) into the
// final table. When any partial spilled, the merge is deferred to the
// partition-aligned drain: every sink partitions by the same group hash,
// so partition p of all partials merges — and emits — as one bounded unit,
// and the coordinator never re-spills rows the workers already wrote.
func (a *ParallelHashAggOp) run() error {
	a.locals = make([]*HashAggOp, len(a.Workers))
	err := runPhased(a.Ctx, len(a.Workers), func(w int) error {
		local := &HashAggOp{
			Input: a.Workers[w], GroupExprs: a.GroupExprs, Aggs: a.Aggs,
			GroupingSets: a.GroupingSets, Out: a.Out, Ctx: a.Ctx,
		}
		if err := local.Open(); err != nil {
			return err
		}
		if err := local.consume(); err != nil {
			return err
		}
		a.locals[w] = local
		return nil
	})
	if err != nil {
		return err // Close drops any spilled partials
	}
	for _, local := range a.locals {
		if local != nil && local.sink.spilled {
			a.spilledMode = true
		}
	}
	if a.spilledMode {
		// Seal every partial: spilled ones flush their remainders so each
		// partition is entirely on disk; resident ones are filtered by
		// hash at drain time — and hand their accounting back now, since
		// the drain re-accounts each group as its partition loads (holding
		// both would charge the shared budget twice for the same bytes).
		for _, local := range a.locals {
			if local == nil {
				continue
			}
			if local.sink.spilled {
				if err := local.sink.finish(); err != nil {
					return err
				}
			} else {
				local.sink.releaseResident()
			}
		}
		return nil
	}
	// In-memory merge. Ownership of the partials' groups transfers to the
	// final sink, which re-accounts each group as it merges; releasing the
	// partials' reservations first keeps the shared budget from being
	// pinned by both sides of the handoff at once.
	for _, local := range a.locals {
		if local != nil {
			local.sink.releaseResident()
		}
	}
	merge := a.sink.mergeGroup
	if a.Disjoint {
		merge = a.sink.appendGroup
	}
	for _, local := range a.locals {
		if local == nil {
			continue // worker beyond the granted slot cap: never ran
		}
		if err := local.sink.drainGroups(merge); err != nil {
			return err
		}
	}
	// A parallel global aggregate over zero workers' rows still emits one
	// row: every local already contributed its empty group, merged above.
	if len(a.GroupExprs) == 0 && a.sink.groupCount() == 0 {
		a.sink.addEmpty()
	}
	return a.sink.finish()
}

// nextPartitionBatch is the spilled-mode drain: merge partition partIdx
// across every partial, emit it, free it, move on. One partition of the
// final group set is resident at a time.
func (a *ParallelHashAggOp) nextPartitionBatch() (*vector.Batch, error) {
	for {
		if a.partTable != nil {
			if b := a.partTable.emitBatch(a.partEmit, a.Out, a.Aggs, a.GroupingSets); b != nil {
				a.partEmit += b.N
				return b, nil
			}
			a.partTable, a.partEmit = nil, 0
			a.sink.res.Release()
			a.partIdx++
		}
		if a.partIdx >= aggSpillParts {
			return nil, nil
		}
		t := newGroupTable()
		for _, local := range a.locals {
			if local == nil {
				continue
			}
			err := local.sink.partitionGroups(a.partIdx, func(g *aggGroup) error {
				if t.mergeInto(g, a.Aggs) {
					a.sink.res.ForceGrow(groupBytes(g))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		a.partTable = t
	}
}

// Next implements Operator.
func (a *ParallelHashAggOp) Next() (*vector.Batch, error) {
	if !a.done {
		if err := a.run(); err != nil {
			return nil, err
		}
		a.done = true
	}
	var b *vector.Batch
	var err error
	if a.spilledMode {
		b, err = a.nextPartitionBatch()
	} else {
		b, err = a.sink.nextBatch(a.Out, a.GroupingSets)
	}
	if err != nil || b == nil {
		return nil, err
	}
	if a.Stats != nil {
		a.Stats.Rows.Add(int64(b.N))
	}
	return b, nil
}

// Close implements Operator.
func (a *ParallelHashAggOp) Close() error {
	for _, local := range a.locals {
		if local != nil {
			local.sink.close()
		}
	}
	a.locals, a.partTable = nil, nil
	a.sink.close()
	a.sink = nil
	return closeWorkers(a.Workers, a.merges)
}

// Parallelize rewrites a physical operator tree for intra-query parallelism
// at degree dop: scans fan out over shared morsel queues, aggregations
// become two-phase, and hash joins share a partitioned build table across
// probe-pipeline clones. Serial semantics are preserved exactly; only the
// order of result rows (for queries without ORDER BY) may change. The
// second result reports whether any parallel operator was inserted — a
// false means the tree came back unchanged (e.g. single-split scans only).
func Parallelize(op Operator, ctx *Context, dop int) (Operator, bool) {
	if dop <= 1 {
		return op, false
	}
	p := &parallelizer{ctx: ctx, dop: dop}
	op = p.rec(op)
	return op, p.changed
}

type parallelizer struct {
	ctx     *Context
	dop     int
	changed bool
}

// sortParallel reports whether Sort/TopN may move below the exchange
// (hive.sort.parallel). A nil context — operator trees built outside the
// HS2 path — keeps the feature on, matching the server default.
func (p *parallelizer) sortParallel() bool {
	return p.ctx == nil || p.ctx.SortParallel
}

// spoolParallel reports whether spooled subtrees may feed worker pipelines
// (hive.spool.parallel), same nil-context default as sortParallel.
func (p *parallelizer) spoolParallel() bool {
	return p.ctx == nil || p.ctx.SpoolParallel
}

func (p *parallelizer) rec(op Operator) Operator {
	switch x := op.(type) {
	case *HashAggOp:
		// Partition-wise aggregation (props.go): when the group keys cover
		// the base scan's partition columns, worker partials are
		// key-disjoint. Stripe expansion is suppressed — directory
		// integrity IS the disjointness — and the final merge appends.
		if p.aggPartitionWise(x) {
			if workers, merges, ok := p.cloneWorkersExpand(x.Input, false); ok {
				p.changed = true
				return &ParallelHashAggOp{
					Workers: workers, GroupExprs: x.GroupExprs, Aggs: x.Aggs,
					Out: x.Out, Ctx: p.ctx, Stats: x.Stats, merges: merges,
					Disjoint: true,
				}
			}
		}
		if workers, merges, ok := p.cloneWorkers(x.Input); ok {
			p.changed = true
			return &ParallelHashAggOp{
				Workers: workers, GroupExprs: x.GroupExprs, Aggs: x.Aggs,
				GroupingSets: x.GroupingSets, Out: x.Out, Ctx: p.ctx,
				Stats: x.Stats, merges: merges,
			}
		}
		x.Input = p.rec(x.Input)
		return x
	case *ScanOp, *FilterOp, *ProjectOp:
		// A chain over a co-partitioned join parallelizes unit-wise
		// (partjoin.go) before the generic shared-build clone.
		if pj, ok := p.partitionJoin(op); ok {
			p.changed = true
			return pj
		}
		if workers, merges, ok := p.cloneWorkers(op); ok {
			p.changed = true
			return &ParallelOp{Workers: workers, Ctx: p.ctx, merges: merges}
		}
		switch y := op.(type) {
		case *FilterOp:
			y.Input = p.rec(y.Input)
		case *ProjectOp:
			y.Input = p.rec(y.Input)
		}
		return op
	case *HashJoinOp:
		// Partition-wise join (partjoin.go): co-partitioned sides join as
		// independent units with no shared build and no exchange.
		if pj, ok := p.partitionJoin(x); ok {
			p.changed = true
			return pj
		}
		if workers, merges, ok := p.cloneWorkers(op); ok {
			p.changed = true
			return &ParallelOp{Workers: workers, Ctx: p.ctx, merges: merges}
		}
		x.Left = p.rec(x.Left)
		x.Right = p.rec(x.Right)
		return x
	case *SortOp:
		// Parallel ORDER BY: the sort moves below the exchange — every
		// worker sorts its share of the morsel stream into a local run,
		// and the order-preserving MergeOp streams the runs through a
		// loser-tree k-way merge on the coordinator.
		if p.sortParallel() {
			if workers, merges, ok := p.cloneWorkers(x.Input); ok {
				p.changed = true
				runs := make([]Operator, len(workers))
				for i, w := range workers {
					runs[i] = &SortOp{Input: w, Keys: x.Keys, Ctx: p.ctx}
				}
				return &MergeOp{Workers: runs, Keys: x.Keys, Ctx: p.ctx, merges: merges}
			}
		}
		x.Input = p.rec(x.Input)
		return x
	case *TopNOp:
		// Parallel TopN: the LIMIT pushes into every worker's run as a
		// thread-local bounded heap; survivors merge into one final heap.
		if p.sortParallel() && x.N > 0 {
			if workers, merges, ok := p.cloneWorkers(x.Input); ok {
				p.changed = true
				return &ParallelTopNOp{Workers: workers, Keys: x.Keys, N: x.N, Offset: x.Offset, Ctx: p.ctx, merges: merges}
			}
		}
		x.Input = p.rec(x.Input)
		return x
	case *WindowOp:
		x.Input = p.rec(x.Input)
		return x
	case *LimitOp:
		// An unfused LIMIT directly over a sort (trees built outside the
		// compiler's TopN fusion) is still a TopN: push the limit into
		// per-worker runs rather than serializing the sort.
		if s, ok := x.Input.(*SortOp); ok && p.sortParallel() && x.N > 0 {
			if workers, merges, ok := p.cloneWorkers(s.Input); ok {
				p.changed = true
				return &ParallelTopNOp{Workers: workers, Keys: s.Keys, N: x.N, Offset: x.Offset, Ctx: p.ctx, merges: merges}
			}
		}
		x.Input = p.rec(x.Input)
		return x
	case *SpoolOp:
		x.Input = p.rec(x.Input)
		return x
	case *SetOpOp:
		x.Left = p.rec(x.Left)
		x.Right = p.rec(x.Right)
		return x
	case *UnionAllOp:
		for i, in := range x.Inputs {
			x.Inputs[i] = p.rec(in)
		}
		return x
	}
	return op
}

// aggPartitionWise reports whether the aggregation's group keys cover
// every partition column of the pipeline's base scan while its splits are
// whole directories: each directory is one distinct partition-value
// combination owned by exactly one worker, so rows agreeing on the group
// keys — hence on all partition values — aggregate on the same worker and
// the partials are key-disjoint. Grouping sets break the argument (a
// masked-out partition column merges across units).
func (p *parallelizer) aggPartitionWise(x *HashAggOp) bool {
	if !p.ctx.propsOn() || x.GroupingSets != nil {
		return false
	}
	s, m, ok := scanPartInfo(x.Input)
	if !ok || !wholeDirSplits(s) {
		return false
	}
	covered := map[int]bool{}
	for _, e := range x.GroupExprs {
		if c, refOK := e.ColRef(); refOK {
			if pk, isPart := m[c]; isPart {
				covered[pk] = true
			}
		}
	}
	return len(covered) == len(s.Table.PartKeys)
}

// spoolMorsels is the morsel count assumed for a spooled source: its row
// count is unknown until runtime materialization, so admission assumes
// enough batches to keep every worker busy and lets the shared cursor
// starve surplus workers naturally when the spool turns out small.
const spoolMorsels = 1 << 20

// clonable reports whether op is a morsel pipeline — a chain of stateless
// per-batch operators (filter, project, hashed join probe) over a table
// scan or a published spool — that can be cloned per worker. Right/full
// outer joins stay serial (their unmatched-build emission is a global
// pass), as do nested-loop probes. Spools qualify when hive.spool.parallel
// is on: materialization is single-flight and the published content is
// immutable, so clones can split it through a shared cursor.
func (p *parallelizer) clonable(op Operator) bool {
	switch x := op.(type) {
	case *ScanOp:
		return true
	case *SpoolOp:
		return p.spoolParallel()
	case *FilterOp:
		return p.clonable(x.Input)
	case *ProjectOp:
		return p.clonable(x.Input)
	case *HashJoinOp:
		if x.Kind == plan.Right || x.Kind == plan.Full || len(x.LeftKeys) == 0 {
			return false
		}
		return p.clonable(x.Left)
	}
	return false
}

// morselCount returns the number of splits the pipeline's base scan will
// distribute; parallelism is pointless below two morsels.
func morselCount(op Operator) int {
	switch x := op.(type) {
	case *ScanOp:
		return len(x.Splits)
	case *SpoolOp:
		return spoolMorsels
	case *FilterOp:
		return morselCount(x.Input)
	case *ProjectOp:
		return morselCount(x.Input)
	case *HashJoinOp:
		return morselCount(x.Left)
	}
	return 0
}

// cloneWorkers turns a clonable pipeline into worker pipelines that share
// one morsel queue (and, for joins, one build table). The worker count is
// the requested DOP capped by the morsel count (extra workers would never
// receive a split) and the executor pool size (extra workers would never
// receive a slot). The original operators are mutated to carry the shared
// state and then templated.
func (p *parallelizer) cloneWorkers(op Operator) ([]Operator, []statMerge, bool) {
	return p.cloneWorkersExpand(op, true)
}

// cloneWorkersExpand is cloneWorkers with stripe expansion controllable:
// partition-wise placements keep directory splits whole because split
// value-disjointness is what makes their merge an append.
func (p *parallelizer) cloneWorkersExpand(op Operator, expand bool) ([]Operator, []statMerge, bool) {
	if !p.clonable(op) {
		return nil, nil, false
	}
	if expand {
		p.expandSplits(op)
	}
	mc := morselCount(op)
	if mc < 2 {
		return nil, nil, false
	}
	n := p.dop
	if mc < n {
		n = mc
	}
	if p.ctx != nil && p.ctx.Slots != nil {
		if e := p.ctx.Slots.Executors() + 1; e < n { // +1: the coordinator's implicit slot
			n = e
		}
	}
	if n < 2 {
		return nil, nil, false
	}
	p.prepareShared(op)
	workers := make([]Operator, n)
	var merges []statMerge
	for w := range workers {
		workers[w] = clonePipeline(op, &merges)
	}
	return workers, merges, true
}

// expandSplits walks a clonable pipeline to its base scan and refines
// coarse directory splits into stripe-granular morsels (paper §5.1) before
// the morsel count caps the worker fan-out. Without this, an unpartitioned
// table is a single whole-directory morsel and scans serially no matter
// the DOP.
func (p *parallelizer) expandSplits(op Operator) {
	switch x := op.(type) {
	case *ScanOp:
		p.expandScanSplits(x)
	case *FilterOp:
		p.expandSplits(x.Input)
	case *ProjectOp:
		p.expandSplits(x.Input)
	case *HashJoinOp:
		p.expandSplits(x.Left)
	}
}

// expandScanSplits replaces the scan's directory splits with stripe ranges
// enumerated once, here on the coordinator, through one shared snapshot
// per directory (its delete set loads once and is read-only afterwards,
// so every worker reuses it). Expansion runs only when the directory
// morsels cannot keep the workers busy — partitioned tables with plenty of
// partitions keep their coarse splits and skip the footer reads — and
// never when dynamic partition pruning is bound: pruning runs at first
// take, after the build side publishes its filter, and enumerating
// partitions it would discard wastes snapshot opens and footer reads.
// Any enumeration failure falls back to the unexpanded split: stripe
// morsels are an optimization, never a correctness requirement.
func (p *parallelizer) expandScanSplits(s *ScanOp) {
	if s.Shared != nil || len(s.Splits) == 0 || len(s.Prune) > 0 {
		return
	}
	if len(s.Splits) >= 2*p.dop {
		// Plenty of directory morsels — but a skewed partitioned table can
		// still hide most of its rows in a few of them. Cost-based pass:
		// probe row estimates and refine only the oversized directories.
		p.expandSkewedSplits(s)
		return
	}
	target := 0
	if p.ctx != nil {
		target = p.ctx.TargetStripes
	}
	out := make([]TableSplit, 0, len(s.Splits))
	for _, sp := range s.Splits {
		if sp.File != "" {
			out = append(out, sp)
			continue
		}
		snap, err := acid.OpenSnapshotWith(s.FS, sp.Loc, s.dataColumns(), sp.Valid, s.Ctx.snapOpts())
		if err != nil {
			out = append(out, sp)
			continue
		}
		ranges, err := snap.Splits(target)
		if err != nil || len(ranges) == 0 {
			// Enumeration failed but the snapshot is open with its delete
			// set loaded; carry it so the scan does not reopen the
			// directory and reload every delete delta at execution time.
			sp.Snap = snap
			out = append(out, sp)
			continue
		}
		for _, rg := range ranges {
			out = append(out, TableSplit{
				Loc: sp.Loc, PartValues: sp.PartValues, Valid: sp.Valid,
				File: rg.File, StripeLo: rg.StripeLo, StripeHi: rg.StripeHi,
				Snap: snap,
			})
		}
	}
	s.Splits = out
}

// maxSkewProbe bounds the snapshot opens the skew pass will pay for; a
// table with more directories than this amortizes its skew across enough
// morsels that stealing already balances it.
const maxSkewProbe = 256

// expandSkewedSplits is the cost-based arm of stripe expansion: directory
// morsels outnumber the workers, but a morsel is the unit of stealing, so
// one directory holding a multiple of its fair share serializes the tail
// on whichever worker drew it. Enumerate stripe ranges (row counts come
// from the ORC footers the snapshot already reads), then refine only the
// directories holding more than twice the mean; everything else keeps its
// coarse split, carrying the opened snapshot so the scan does not reload
// delete deltas.
func (p *parallelizer) expandSkewedSplits(s *ScanOp) {
	if len(s.Splits) > maxSkewProbe {
		return
	}
	target := 0
	if p.ctx != nil {
		target = p.ctx.TargetStripes
	}
	type probe struct {
		ranges []acid.ScanRange
		rows   int64
	}
	probes := make([]*probe, len(s.Splits))
	var total int64
	dirs := 0
	for i, sp := range s.Splits {
		if sp.File != "" || sp.Snap != nil {
			continue
		}
		snap, err := acid.OpenSnapshotWith(s.FS, sp.Loc, s.dataColumns(), sp.Valid, s.Ctx.snapOpts())
		if err != nil {
			continue
		}
		s.Splits[i].Snap = snap // reuse at execution either way
		ranges, err := snap.Splits(target)
		if err != nil || len(ranges) == 0 {
			continue
		}
		pr := &probe{ranges: ranges}
		for _, rg := range ranges {
			pr.rows += rg.Rows
		}
		probes[i] = pr
		total += pr.rows
		dirs++
	}
	if dirs == 0 || total == 0 {
		return
	}
	mean := total / int64(dirs)
	out := make([]TableSplit, 0, len(s.Splits))
	for i, sp := range s.Splits {
		pr := probes[i]
		if pr == nil || len(pr.ranges) < 2 || pr.rows <= 2*mean {
			out = append(out, sp)
			continue
		}
		for _, rg := range pr.ranges {
			out = append(out, TableSplit{
				Loc: sp.Loc, PartValues: sp.PartValues, Valid: sp.Valid,
				File: rg.File, StripeLo: rg.StripeLo, StripeHi: rg.StripeHi,
				Snap: sp.Snap,
			})
		}
	}
	s.Splits = out
}

// prepareShared attaches the cross-worker state to the template pipeline:
// scans get the shared split queue, joins get the shared build (whose own
// input subtree is parallelized recursively), spools get the shared
// consumption cursor their clones split the published content through.
func (p *parallelizer) prepareShared(op Operator) {
	switch x := op.(type) {
	case *ScanOp:
		if x.Shared == nil {
			x.Shared = NewSplitQueue(x.Splits)
			x.Splits = nil
		}
	case *SpoolOp:
		if x.Cursor == nil {
			x.Types() // resolve the schema while single-threaded
			x.Cursor = &spoolCursor{}
			x.Input = p.rec(x.Input)
		}
	case *FilterOp:
		p.prepareShared(x.Input)
	case *ProjectOp:
		p.prepareShared(x.Input)
	case *HashJoinOp:
		if x.Shared == nil {
			x.Types() // resolve output schema while Right is still attached
			x.Shared = &sharedBuild{right: p.rec(x.Right)}
			x.Right = nil
		}
		p.prepareShared(x.Left)
	}
}

// clonePipeline deep-copies the pipeline operators, sharing compiled
// expressions (pure) and the prepared shared state. Scans get per-worker
// stats counters, merged back into the plan counter on Close.
func clonePipeline(op Operator, merges *[]statMerge) Operator {
	switch x := op.(type) {
	case *ScanOp:
		clone := &ScanOp{
			FS: x.FS, Table: x.Table, Cols: x.Cols, Meta: x.Meta,
			Sarg: x.Sarg, RF: x.RF, Prune: x.Prune, Ctx: x.Ctx, Shared: x.Shared,
		}
		if x.Stats != nil {
			ws := &RuntimeStats{Name: x.Stats.Name}
			clone.Stats = ws
			*merges = append(*merges, statMerge{from: ws, to: x.Stats})
		}
		return clone
	case *SpoolOp:
		// Clones share the input operator (only the single-flight
		// materialization winner ever runs it) and the consumption cursor.
		return &SpoolOp{ID: x.ID, Input: x.Input, Ctx: x.Ctx, Cursor: x.Cursor, ts: x.ts}
	case *FilterOp:
		return &FilterOp{Input: clonePipeline(x.Input, merges), Pred: x.Pred, Stats: x.Stats}
	case *ProjectOp:
		return &ProjectOp{Input: clonePipeline(x.Input, merges), Exprs: x.Exprs, Out: x.Out, Stats: x.Stats}
	case *HashJoinOp:
		return &HashJoinOp{
			Left: clonePipeline(x.Left, merges), Kind: x.Kind,
			LeftKeys: x.LeftKeys, RightKeys: x.RightKeys, Residual: x.Residual,
			Ctx: x.Ctx, Stats: x.Stats, Shared: x.Shared, BuildFilter: x.BuildFilter,
			outTypes: x.outTypes, leftW: x.leftW, rightW: x.rightW, rtTypes: x.rtTypes,
		}
	}
	return op
}
