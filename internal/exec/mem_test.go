package exec

import (
	"sync"
	"testing"
)

func TestGovernorGrowDenyAndPeak(t *testing.T) {
	g := NewGovernor(1000)
	r := g.Reserve("op")
	if !r.Grow(600) {
		t.Fatal("600 of 1000 denied")
	}
	if r.Grow(500) {
		t.Fatal("1100 of 1000 granted")
	}
	if g.UsedBytes() != 600 {
		t.Fatalf("denied grow must not hold bytes: used=%d", g.UsedBytes())
	}
	if !r.Grow(400) {
		t.Fatal("exactly at budget denied")
	}
	r.ForceGrow(300) // past budget, unconditional
	if g.UsedBytes() != 1300 || g.PeakBytes() != 1300 {
		t.Fatalf("used=%d peak=%d", g.UsedBytes(), g.PeakBytes())
	}
	r.Shrink(5000) // clamped to held
	if g.UsedBytes() != 0 {
		t.Fatalf("shrink past held: used=%d", g.UsedBytes())
	}
	if g.PeakBytes() != 1300 {
		t.Fatalf("peak must survive shrink: %d", g.PeakBytes())
	}
	g.NoteSpill(123)
	if g.SpilledBytes() != 123 {
		t.Fatalf("spilled=%d", g.SpilledBytes())
	}
}

func TestGovernorNilAndUnlimited(t *testing.T) {
	var g *Governor
	r := g.Reserve("op")
	if !r.Grow(1 << 40) {
		t.Fatal("nil governor must grant everything")
	}
	r.Release()
	g.NoteSpill(1)
	if g.SpilledBytes() != 0 || g.PeakBytes() != 0 {
		t.Fatal("nil governor accounts nothing")
	}

	u := NewGovernor(0)
	ur := u.Reserve("op")
	if !ur.Grow(1 << 40) {
		t.Fatal("unlimited budget denied")
	}
	if u.PeakBytes() != 1<<40 {
		t.Fatal("unlimited budget still tracks peak")
	}
	ur.Release()
	if u.UsedBytes() != 0 {
		t.Fatal("release leak")
	}
}

// TestGovernorConcurrent hammers one governor from many goroutines — the
// shape of parallel worker reservations — and checks conservation. Run
// under -race via `make race`.
func TestGovernorConcurrent(t *testing.T) {
	g := NewGovernor(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := g.Reserve("worker")
			for i := 0; i < 2000; i++ {
				if !r.Grow(100) {
					g.NoteSpill(100)
					r.Release()
				}
			}
			r.Release()
		}()
	}
	wg.Wait()
	if g.UsedBytes() != 0 {
		t.Fatalf("conservation violated: used=%d after all releases", g.UsedBytes())
	}
	// Peak observes denied requests too, so it may overshoot the budget by
	// at most one in-flight request per worker.
	if g.PeakBytes() == 0 || g.PeakBytes() > 1<<20+8*100 {
		t.Fatalf("peak out of range: %d", g.PeakBytes())
	}
}
