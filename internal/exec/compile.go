package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/types"
)

// Compiler translates logical plans into operator trees (the "physical
// plan" and "task compiler" stages of paper Figure 2). Scans are delegated
// to the caller, which knows the storage layer, snapshots and LLAP wiring.
type Compiler struct {
	Ctx         *Context
	MakeScan    func(s *plan.Scan) (Operator, error)
	MakeForeign func(f *plan.ForeignScan) (Operator, error)
	// CollectStats enables per-operator row counters for reoptimization.
	CollectStats bool
}

// Compile builds the operator tree for a logical plan.
func (c *Compiler) Compile(r plan.Rel) (Operator, error) {
	switch x := r.(type) {
	case *plan.Scan:
		if c.MakeScan == nil {
			return nil, fmt.Errorf("exec: no scan factory configured")
		}
		return c.MakeScan(x)

	case *plan.ForeignScan:
		if c.MakeForeign == nil {
			return nil, fmt.Errorf("exec: no foreign scan factory configured for %s", x.Handler)
		}
		return c.MakeForeign(x)

	case *plan.Values:
		ts := x.Types
		if ts == nil && len(x.Rows) > 0 {
			for _, d := range x.Rows[0] {
				ts = append(ts, types.T{Kind: d.K})
			}
		}
		return &ValuesOp{Rows: x.Rows, Ts: ts}, nil

	case *plan.Filter:
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		pred, err := Compile(x.Cond, in.Types())
		if err != nil {
			return nil, err
		}
		op := &FilterOp{Input: in, Pred: pred}
		if c.CollectStats {
			op.Stats = c.Ctx.NewStats("filter")
		}
		return op, nil

	case *plan.Project:
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		exprs, err := CompileAll(x.Exprs, in.Types())
		if err != nil {
			return nil, err
		}
		out := make([]types.T, len(exprs))
		for i, e := range exprs {
			out[i] = e.T
		}
		return &ProjectOp{Input: in, Exprs: exprs, Out: out}, nil

	case *plan.Join:
		return c.compileJoin(x)

	case *plan.Aggregate:
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		groups, err := CompileAll(x.GroupBy, in.Types())
		if err != nil {
			return nil, err
		}
		aggs, err := CompileAggs(x.Aggs, in.Types())
		if err != nil {
			return nil, err
		}
		out := make([]types.T, 0, len(x.Schema()))
		for _, f := range x.Schema() {
			out = append(out, f.T)
		}
		op := &HashAggOp{Input: in, GroupExprs: groups, Aggs: aggs, GroupingSets: x.GroupingSets, Out: out, Ctx: c.Ctx}
		if c.CollectStats {
			op.Stats = c.Ctx.NewStats("aggregate")
		}
		return op, nil

	case *plan.Window:
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		out := make([]types.T, 0, len(x.Schema()))
		for _, f := range x.Schema() {
			out = append(out, f.T)
		}
		return &WindowOp{Input: in, Fns: x.Fns, Out: out, Ctx: c.Ctx}, nil

	case *plan.Sort:
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		return &SortOp{Input: in, Keys: x.Keys, Ctx: c.Ctx}, nil

	case *plan.Limit:
		// LIMIT 0 needs no input at all: emit an empty result with the
		// subtree's schema and skip compiling (and ever running) the
		// input.
		if x.N == 0 {
			var ts []types.T
			for _, f := range x.Schema() {
				ts = append(ts, f.T)
			}
			return &ValuesOp{Ts: ts}, nil
		}
		// ORDER BY + LIMIT [OFFSET] fuses into TopN: the heap keeps
		// offset+limit rows and emission skips the offset.
		if s, ok := x.Input.(*plan.Sort); ok {
			in, err := c.Compile(s.Input)
			if err != nil {
				return nil, err
			}
			return &TopNOp{Input: in, Keys: s.Keys, N: x.N, Offset: x.Offset, Ctx: c.Ctx}, nil
		}
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		return &LimitOp{Input: in, N: x.N, Offset: x.Offset}, nil

	case *plan.Spool:
		in, err := c.Compile(x.Input)
		if err != nil {
			return nil, err
		}
		return &SpoolOp{ID: x.ID, Input: in, Ctx: c.Ctx}, nil

	case *plan.SetOp:
		l, err := c.Compile(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(x.Right)
		if err != nil {
			return nil, err
		}
		if x.Kind == plan.Union && x.All {
			return &UnionAllOp{Inputs: []Operator{l, r}}, nil
		}
		return &SetOpOp{Kind: x.Kind, All: x.All, Left: l, Right: r, Ctx: c.Ctx}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T", r)
}

// compileJoin splits the join condition into equi-key pairs and a residual.
func (c *Compiler) compileJoin(j *plan.Join) (Operator, error) {
	left, err := c.Compile(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.Compile(j.Right)
	if err != nil {
		return nil, err
	}
	leftW := len(left.Types())
	combined := append(append([]types.T{}, left.Types()...), right.Types()...)

	var leftKeys, rightKeys []*CompiledExpr
	var residual []plan.Rex
	for _, conj := range plan.Conjuncts(j.Cond) {
		lk, rk, ok := equiPair(conj, leftW)
		if !ok {
			if !plan.IsLiteralTrue(conj) {
				residual = append(residual, conj)
			}
			continue
		}
		le, err := Compile(lk, left.Types())
		if err != nil {
			return nil, err
		}
		re, err := Compile(plan.ShiftCols(rk, -leftW), right.Types())
		if err != nil {
			return nil, err
		}
		leftKeys = append(leftKeys, le)
		rightKeys = append(rightKeys, re)
	}
	var res *CompiledExpr
	if cond := plan.AndAll(residual); cond != nil {
		e, err := Compile(cond, combined)
		if err != nil {
			return nil, err
		}
		res = e
	}
	op := &HashJoinOp{
		Left: left, Right: right, Kind: j.Kind,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: res, Ctx: c.Ctx,
	}
	if j.ReducerID != 0 && c.Ctx != nil && len(rightKeys) > 0 {
		op.BuildFilter = c.Ctx.RegisterFilter(j.ReducerID)
	}
	if c.CollectStats {
		op.Stats = c.Ctx.NewStats("join")
	}
	return op, nil
}

// equiPair recognizes "leftExpr = rightExpr" conjuncts where each side
// references exactly one input.
func equiPair(conj plan.Rex, leftW int) (plan.Rex, plan.Rex, bool) {
	f, ok := conj.(*plan.Func)
	if !ok || f.Op != "=" || len(f.Args) != 2 {
		return nil, nil, false
	}
	side := func(e plan.Rex) int {
		bits := map[int]bool{}
		plan.InputBits(e, bits)
		if len(bits) == 0 {
			return 0 // constant: belongs to neither
		}
		allLeft, allRight := true, true
		for i := range bits {
			if i >= leftW {
				allLeft = false
			} else {
				allRight = false
			}
		}
		switch {
		case allLeft:
			return -1
		case allRight:
			return 1
		default:
			return 0
		}
	}
	a, b := side(f.Args[0]), side(f.Args[1])
	switch {
	case a == -1 && b == 1:
		return f.Args[0], f.Args[1], true
	case a == 1 && b == -1:
		return f.Args[1], f.Args[0], true
	}
	return nil, nil, false
}
