package exec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/plan"
	"repro/internal/types"
)

// spillEnv is a governed execution context over a fresh DFS scratch
// directory, plus the probes the spill tests assert on.
type spillEnv struct {
	fs  *dfs.FS
	ctx *Context
}

func newSpillEnv(budget int64) *spillEnv {
	fs := dfs.New()
	fs.MkdirAll("/scratch")
	ctx := NewContext()
	ctx.Mem = NewGovernor(budget)
	ctx.FS = fs
	ctx.ScratchDir = "/scratch"
	return &spillEnv{fs: fs, ctx: ctx}
}

// leakedFiles returns the scratch files still on disk.
func (e *spillEnv) leakedFiles(t *testing.T) []string {
	t.Helper()
	infos, err := e.fs.ListRecursive("/scratch")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, fi := range infos {
		out = append(out, fi.Path)
	}
	return out
}

func rowsEqual(a, b [][]types.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			x, y := a[i][c], b[i][c]
			if x.Null != y.Null || (!x.Null && x.Compare(y) != 0) {
				return false
			}
		}
	}
	return true
}

// runExternalSortTrial checks one random input against the in-memory
// stable sort, including tie order (the unique id column of randomRows
// pins every row): external and in-memory sorts must be byte-identical.
func runExternalSortTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	n := 1 + rng.Intn(4000)
	batch := 1 + rng.Intn(200)
	budget := int64(1 + rng.Intn(64*1024))
	rows := randomRows(rng, n)
	keys := []plan.SortKey{{Col: 0, Desc: rng.Intn(2) == 0, NullsFirst: rng.Intn(2) == 0}, {Col: 1}}

	want := make([][]types.Datum, n)
	copy(want, rows)
	sortRows(want, keys)

	env := newSpillEnv(budget)
	op := &SortOp{Input: &rowsOp{ts: mergeTestTypes, rows: rows, batch: batch}, Keys: keys, Ctx: env.ctx}
	got, err := Drain(op)
	if err != nil {
		t.Fatalf("n=%d budget=%d: %v", n, budget, err)
	}
	if !rowsEqual(got, want) {
		t.Fatalf("n=%d batch=%d budget=%d: external sort diverges from stable in-memory sort", n, batch, budget)
	}
	if leaks := env.leakedFiles(t); len(leaks) != 0 {
		t.Fatalf("n=%d budget=%d: leaked spill files after Close: %v", n, budget, leaks)
	}
}

// TestExternalSortProperty is the fixed-seed property test: random batch
// sizes, budgets small enough to force many runs, ascending/descending and
// NULLS FIRST/LAST keys. The seed-randomized twin runs under -tags stress.
func TestExternalSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		runExternalSortTrial(t, rng)
	}
}

// TestExternalSortActuallySpills pins the mechanism: a budget far below
// the working set must produce spilled bytes and multiple runs, and an
// unlimited budget must not write a byte.
func TestExternalSortActuallySpills(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randomRows(rng, 2000)
	keys := []plan.SortKey{{Col: 0}, {Col: 2}}

	env := newSpillEnv(8 * 1024)
	op := &SortOp{Input: &rowsOp{ts: mergeTestTypes, rows: rows, batch: 64}, Keys: keys, Ctx: env.ctx}
	if _, err := Drain(op); err != nil {
		t.Fatal(err)
	}
	if env.ctx.Mem.SpilledBytes() == 0 {
		t.Fatal("budget 8KiB over ~2000 rows: expected spilled bytes")
	}
	if env.ctx.Mem.PeakBytes() == 0 {
		t.Fatal("expected nonzero peak accounting")
	}

	free := newSpillEnv(0)
	op = &SortOp{Input: &rowsOp{ts: mergeTestTypes, rows: rows, batch: 64}, Keys: keys, Ctx: free.ctx}
	if _, err := Drain(op); err != nil {
		t.Fatal(err)
	}
	if free.ctx.Mem.SpilledBytes() != 0 {
		t.Fatal("unlimited budget should not spill")
	}
}

// TestSortSpillCleanupOnError covers the mid-query failure path: the input
// errors after runs have spilled, and Close must still remove every
// scratch file.
func TestSortSpillCleanupOnError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randomRows(rng, 1500)
	env := newSpillEnv(4 * 1024)
	op := &SortOp{
		Input: &rowsOp{ts: mergeTestTypes, rows: rows, batch: 50, errAt: 1200},
		Keys:  []plan.SortKey{{Col: 0}},
		Ctx:   env.ctx,
	}
	if _, err := Drain(op); err == nil {
		t.Fatal("expected injected failure")
	}
	if env.ctx.Mem.SpilledBytes() == 0 {
		t.Fatal("failure was injected after spilling should have started")
	}
	if leaks := env.leakedFiles(t); len(leaks) != 0 {
		t.Fatalf("leaked spill files after failed query: %v", leaks)
	}
	if used := env.ctx.Mem.UsedBytes(); used != 0 {
		t.Fatalf("reservation leak: %d bytes still held after Close", used)
	}
}

// budgetedRun executes a SQL query against the exec test warehouse with a
// governed context and reports the rows plus the governor.
func (w *testWarehouse) budgetedRun(t *testing.T, q string, budget int64) ([]string, *Governor) {
	t.Helper()
	ctx := NewContext()
	ctx.Mem = NewGovernor(budget)
	ctx.FS = w.ms.FS()
	ctx.ScratchDir = "/wh/_scratch/test"
	w.ms.FS().MkdirAll(ctx.ScratchDir)
	rows, err := w.runWith(ctx, q)
	if err != nil {
		t.Fatalf("budget %d, %q: %v", budget, q, err)
	}
	infos, err := w.ms.FS().ListRecursive(ctx.ScratchDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("budget %d, %q: leaked scratch files: %v", budget, q, infos)
	}
	return rows, ctx.Mem
}

// TestAggAndJoinSpillMatchesInMemory runs aggregation and join queries
// with a budget far below their working set and requires results identical
// to the ungoverned run (sorted: hash-spill drains emit partition-at-a-
// time, and GROUP BY/join output order is unspecified without ORDER BY).
func TestAggAndJoinSpillMatchesInMemory(t *testing.T) {
	w := newTestWarehouse(t)
	queries := []struct {
		q      string
		budget int64
	}{
		{`SELECT ds, COUNT(*), SUM(price), AVG(qty) FROM sales GROUP BY ds`, 600},
		{`SELECT item_sk, COUNT(DISTINCT qty), MIN(price), MAX(price) FROM sales GROUP BY item_sk`, 600},
		{`SELECT category, SUM(price), COUNT(*) FROM sales, items
		   WHERE sales.item_sk = items.item_sk GROUP BY category`, 600},
		{`SELECT name, qty FROM items LEFT JOIN sales ON items.item_sk = sales.item_sk`, 600},
		{`SELECT name FROM items WHERE EXISTS (SELECT 1 FROM sales WHERE sales.item_sk = items.item_sk)`, 600},
		// The filtered anti-join build is 2 rows; a lower budget still
		// forces it to Grace-partition.
		{`SELECT name FROM items WHERE NOT EXISTS (SELECT 1 FROM sales WHERE sales.item_sk = items.item_sk AND qty > 3)`, 200},
		{`SELECT name, qty FROM items RIGHT JOIN sales ON items.item_sk = sales.item_sk`, 600},
		{`SELECT name, qty FROM items FULL JOIN sales ON items.item_sk = sales.item_sk`, 600},
	}
	for _, c := range queries {
		want, free := w.budgetedRun(t, c.q, 0)
		if free.SpilledBytes() != 0 {
			t.Fatalf("%q: unlimited run spilled", c.q)
		}
		got, gov := w.budgetedRun(t, c.q, c.budget)
		if gov.SpilledBytes() == 0 {
			t.Errorf("%q: budget %dB did not spill", c.q, c.budget)
		}
		if !reflect.DeepEqual(sorted(got), sorted(want)) {
			t.Errorf("%q: budgeted results diverge\n got %v\nwant %v", c.q, got, want)
		}
	}
}

// TestLimitOffset covers the operator-level OFFSET contract, including an
// offset past end of result.
func TestLimitOffset(t *testing.T) {
	w := newTestWarehouse(t)
	all := w.mustRun(`SELECT item_sk, ds FROM sales ORDER BY item_sk, ds`)
	cases := []struct {
		q    string
		want []string
	}{
		{`SELECT item_sk, ds FROM sales ORDER BY item_sk, ds LIMIT 3 OFFSET 2`, all[2:5]},
		{`SELECT item_sk, ds FROM sales ORDER BY item_sk, ds LIMIT 100 OFFSET 6`, all[6:]},
		{`SELECT item_sk, ds FROM sales ORDER BY item_sk, ds LIMIT 5 OFFSET 100`, nil},
		{`SELECT item_sk, ds FROM sales ORDER BY item_sk, ds LIMIT 0 OFFSET 2`, nil},
	}
	for _, c := range cases {
		got := w.mustRun(c.q)
		if !reflect.DeepEqual(got, append([]string{}, c.want...)) {
			t.Errorf("%q: got %v want %v", c.q, got, c.want)
		}
	}
	// Unfused LIMIT ... OFFSET (no ORDER BY): row count contract only.
	if got := w.mustRun(`SELECT item_sk FROM sales LIMIT 3 OFFSET 6`); len(got) != 2 {
		t.Errorf("LIMIT 3 OFFSET 6 over 8 rows: got %d rows", len(got))
	}
	if got := w.mustRun(`SELECT item_sk FROM sales LIMIT 3 OFFSET 20`); len(got) != 0 {
		t.Errorf("OFFSET past end: got %d rows", len(got))
	}
}

// TestAggSpillGroupingSets exercises the spilled drain with grouping sets:
// the grouping id must survive the group codec round trip.
func TestAggSpillGroupingSets(t *testing.T) {
	w := newTestWarehouse(t)
	q := `SELECT ds, count(*) AS c FROM sales GROUP BY GROUPING SETS ((ds), ()) ORDER BY c, ds`
	want, _ := w.budgetedRun(t, q, 0)
	got, gov := w.budgetedRun(t, q, 600)
	if gov.SpilledBytes() == 0 {
		t.Fatal("expected grouping-sets aggregation to spill at 600B")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grouping sets under budget: got %v want %v", got, want)
	}
}

// runWith is run with a caller-supplied context (budgeted tests).
func (w *testWarehouse) runWith(ctx *Context, q string) ([]string, error) {
	rel, err := w.analyzeSQL(q)
	if err != nil {
		return nil, err
	}
	comp := &Compiler{Ctx: ctx, MakeScan: w.makeScan(ctx)}
	op, err := comp.Compile(rel)
	if err != nil {
		return nil, err
	}
	rows, err := Drain(op)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out, nil
}
