package exec

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/acid"
	"repro/internal/analyze"
	"repro/internal/metastore"
	"repro/internal/orc"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// runDOP executes a query like testWarehouse.run but parallelizes the
// physical tree at the given degree first.
func (w *testWarehouse) runDOP(q string, dop int) ([]string, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	rel, err := analyze.New(w.ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		return nil, err
	}
	ctx := NewContext()
	ctx.DOP = dop
	comp := &Compiler{Ctx: ctx, MakeScan: w.makeScan(ctx)}
	op, err := comp.Compile(rel)
	if err != nil {
		return nil, err
	}
	op, _ = Parallelize(op, ctx, dop)
	rows, err := Drain(op)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out, nil
}

// TestParallelMatchesSerial runs a spread of scan/filter/agg/join shapes at
// several degrees of parallelism and requires the same multiset of rows as
// serial execution.
func TestParallelMatchesSerial(t *testing.T) {
	w := newTestWarehouse(t)
	queries := []string{
		`SELECT item_sk, qty FROM sales`,
		`SELECT item_sk, qty FROM sales WHERE qty > 1`,
		`SELECT ds, COUNT(*), SUM(qty), AVG(qty), MIN(price), MAX(price) FROM sales GROUP BY ds`,
		`SELECT item_sk, SUM(qty) FROM sales GROUP BY item_sk`,
		`SELECT COUNT(*), SUM(price) FROM sales`,
		`SELECT COUNT(DISTINCT item_sk) FROM sales`,
		`SELECT category, SUM(s.qty * s.price) FROM sales s, items i
		   WHERE s.item_sk = i.item_sk GROUP BY category`,
		`SELECT s.item_sk, i.category FROM sales s LEFT JOIN items i
		   ON s.item_sk = i.item_sk AND i.category = 'Sports'`,
		`SELECT item_sk FROM sales WHERE EXISTS
		   (SELECT 1 FROM items WHERE items.item_sk = sales.item_sk AND category = 'Books')`,
		`SELECT item_sk FROM sales WHERE NOT EXISTS
		   (SELECT 1 FROM items WHERE items.item_sk = sales.item_sk AND category = 'Books')`,
		`SELECT ds, item_sk, SUM(qty) FROM sales GROUP BY ROLLUP (ds, item_sk)`,
	}
	for _, q := range queries {
		want, err := w.run(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		sort.Strings(want)
		for _, dop := range []int{2, 4, 7} {
			got, err := w.runDOP(q, dop)
			if err != nil {
				t.Fatalf("dop=%d %s: %v", dop, q, err)
			}
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("dop=%d %s:\n got %v\nwant %v", dop, q, got, want)
			}
		}
	}
}

// salesScan builds a ScanOp over every partition of the sales table.
func (w *testWarehouse) salesScan(ctx *Context) *ScanOp {
	w.t.Helper()
	tbl, _ := w.ms.GetTable("default", "sales")
	tm := w.ms.Txns()
	valid := tm.GetValidWriteIds(tbl.FullName(), tm.GetSnapshot())
	var splits []TableSplit
	for _, p := range w.ms.PartitionsOf(tbl) {
		d, err := types.Cast(types.NewString(p.Values[0]), tbl.PartKeys[0].Type)
		if err != nil {
			w.t.Fatal(err)
		}
		splits = append(splits, TableSplit{Loc: p.Location, PartValues: []types.Datum{d}, Valid: valid})
	}
	return &ScanOp{FS: w.ms.FS(), Table: tbl, Cols: []int{0, 1}, Splits: splits, Ctx: ctx}
}

// TestParallelOpExchange drives the generic exchange directly: workers
// sharing a morsel queue must emit every split exactly once, and
// per-worker scan stats must merge back on Close.
func TestParallelOpExchange(t *testing.T) {
	w := newTestWarehouse(t)
	ctx := NewContext()
	scan := w.salesScan(ctx)
	scan.Stats = ctx.NewStats("scan")
	par, changed := Parallelize(scan, ctx, 4)
	if !changed {
		t.Fatal("Parallelize reported no change for a multi-split scan")
	}
	pop, ok := par.(*ParallelOp)
	if !ok {
		t.Fatalf("expected ParallelOp, got %T", par)
	}
	// Stripe expansion turns the two partition splits (two stripes each,
	// StripeRows=2) into four stripe-granular morsels, so DOP 4 gets its
	// full worker fan-out instead of being capped at the partition count.
	if len(pop.Workers) != 4 {
		t.Fatalf("expected 4 workers, got %d", len(pop.Workers))
	}
	rows, err := Drain(pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 8 rows, got %d", len(rows))
	}
	if got := scan.Stats.Rows.Load(); got != 8 {
		t.Fatalf("merged scan stats = %d, want 8", got)
	}
}

// TestParallelHashAggTwoPhase checks the partial/merge path against known
// group results, including AVG and DISTINCT whose states must merge, not
// their results.
func TestParallelHashAggTwoPhase(t *testing.T) {
	w := newTestWarehouse(t)
	got, err := w.runDOP(`SELECT ds, AVG(qty), COUNT(DISTINCT item_sk) FROM sales GROUP BY ds`, 4)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"1|2.25|4", "2|2.5|4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestParallelMemoryPressure verifies that a build-side overflow inside a
// parallel plan still surfaces ErrMemoryPressure (reoptimization trigger).
func TestParallelMemoryPressure(t *testing.T) {
	w := newTestWarehouse(t)
	st, _ := sql.Parse(`SELECT category, SUM(qty) FROM sales s, items i WHERE s.item_sk = i.item_sk GROUP BY category`)
	rel, err := analyze.New(w.ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.DOP = 4
	ctx.MemoryLimitRows = 2
	comp := &Compiler{Ctx: ctx, MakeScan: w.makeScan(ctx)}
	op, err := comp.Compile(rel)
	if err != nil {
		t.Fatal(err)
	}
	op, _ = Parallelize(op, ctx, 4)
	_, err = Drain(op)
	if _, ok := err.(ErrMemoryPressure); !ok {
		t.Fatalf("expected ErrMemoryPressure, got %v", err)
	}
}

// TestVectorHashCrossKind ensures the vectorized key hash agrees across
// numeric representations that compare equal, so joins between INT,
// DOUBLE and DECIMAL keys keep finding their partners.
func TestVectorHashCrossKind(t *testing.T) {
	iv := vector.New(types.TBigint, 1)
	iv.I64[0] = 3
	dv := vector.New(types.TDouble, 1)
	dv.F64[0] = 3.0
	cv := vector.New(types.TDecimal(7, 2), 1)
	cv.I64[0] = 300 // 3.00
	hi, hd, hc := iv.HashAt(0), dv.HashAt(0), cv.HashAt(0)
	if hi != hd || hi != hc {
		t.Fatalf("hashes differ: int=%x double=%x decimal=%x", hi, hd, hc)
	}
	sv := vector.New(types.TString, 2)
	sv.Str[0], sv.Str[1] = "a", "b"
	if sv.HashAt(0) == sv.HashAt(1) {
		t.Fatal("distinct strings hash equal")
	}
	nv := vector.New(types.TBigint, 1)
	nv.SetNull(0)
	if nv.HashAt(0) != vector.NullHash {
		t.Fatal("null hash mismatch")
	}
}

// TestParallelEarlyClose pulls only part of an exchange's output through
// a LIMIT and closes; workers blocked on the bounded channel must unwind
// without hanging or leaking.
func TestParallelEarlyClose(t *testing.T) {
	w := newTestWarehouse(t)
	for _, q := range []string{
		`SELECT item_sk FROM sales LIMIT 3`,
		`SELECT item_sk FROM sales WHERE qty >= 1 LIMIT 1`,
	} {
		rows, err := w.runDOP(q, 4)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := 3
		if strings.Contains(q, "LIMIT 1") {
			want = 1
		}
		if len(rows) != want {
			t.Fatalf("%s: got %d rows, want %d", q, len(rows), want)
		}
	}
}

// TestStripeGranularParallelScanACID builds an unpartitioned ACID table —
// one directory split, which PR 1's whole-directory morsels scanned
// serially — with live delete deltas, and checks that the stripe-granular
// parallel scan fans out across workers yet returns row-identical results
// to the serial scan. Run under -race: all workers share one snapshot's
// delete set and one morsel queue.
func TestStripeGranularParallelScanACID(t *testing.T) {
	w := newTestWarehouse(t)
	tbl := &metastore.Table{
		DB: "default", Name: "events",
		Cols: []metastore.Column{
			{Name: "id", Type: types.TBigint},
			{Name: "v", Type: types.TInt},
		},
	}
	if err := w.ms.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	tbl, _ = w.ms.GetTable("default", "events")
	tm := w.ms.Txns()
	cols := []orc.Column{{Name: "id", Type: types.TBigint}, {Name: "v", Type: types.TInt}}
	// Several insert transactions with small stripes: many stripe morsels.
	next := int64(0)
	for _, n := range []int{37, 23, 1, 40} {
		id := tm.Begin()
		wid, _ := tm.AllocateWriteId(id, tbl.FullName())
		iw := acid.NewInsertWriter(w.ms.FS(), tbl.Location, wid, 0, cols, orc.WriterOptions{StripeRows: 8})
		for i := 0; i < n; i++ {
			if err := iw.WriteRow([]types.Datum{types.NewBigint(next), types.NewInt(int32(next % 7))}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := iw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tm.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	// Live delete delta: drop every id divisible by 9.
	valid := tm.GetValidWriteIds(tbl.FullName(), tm.GetSnapshot())
	snap, err := acid.OpenSnapshot(w.ms.FS(), tbl.Location, cols, valid)
	if err != nil {
		t.Fatal(err)
	}
	var doomed []acid.RowKey
	snap.Scan([]int{acid.MetaWriteID, acid.MetaFileID, acid.MetaRowID, acid.NumMetaCols}, nil,
		func(b *vector.Batch) error {
			for i := 0; i < b.N; i++ {
				r := b.RowIdx(i)
				if b.Cols[3].I64[r]%9 == 0 {
					doomed = append(doomed, acid.RowKey{
						WriteID: b.Cols[0].I64[r], FileID: b.Cols[1].I64[r], RowID: b.Cols[2].I64[r],
					})
				}
			}
			return nil
		})
	id := tm.Begin()
	wid, _ := tm.AllocateWriteId(id, tbl.FullName())
	dw := acid.NewDeleteWriter(w.ms.FS(), tbl.Location, wid, 0)
	for _, k := range doomed {
		dw.Delete(k)
	}
	dw.Close()
	tm.Commit(id)

	serialScan := func() *ScanOp {
		return &ScanOp{FS: w.ms.FS(), Table: tbl, Cols: []int{0, 1}, Splits: w.splitsOf(tbl)}
	}
	want, err := Drain(serialScan())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 101-12 { // 101 rows minus ids 0,9,...,99
		t.Fatalf("serial scan returned %d rows", len(want))
	}
	render := func(rows [][]types.Datum) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r[0].String() + "|" + r[1].String()
		}
		sort.Strings(out)
		return out
	}
	wantR := render(want)
	for _, target := range []int{1, 3} {
		for _, dop := range []int{2, 4, 8} {
			ctx := NewContext()
			ctx.TargetStripes = target
			scan := serialScan()
			scan.Ctx = ctx
			par, changed := Parallelize(scan, ctx, dop)
			if !changed {
				t.Fatalf("target=%d dop=%d: unpartitioned scan stayed serial", target, dop)
			}
			// The planner must have refined the single directory split into
			// stripe-granular morsels sharing one snapshot.
			if scan.Shared == nil {
				t.Fatalf("target=%d dop=%d: scan has no shared morsel queue", target, dop)
			}
			if len(scan.Shared.splits) < 2 {
				t.Fatalf("target=%d dop=%d: only %d morsels", target, dop, len(scan.Shared.splits))
			}
			for _, sp := range scan.Shared.splits {
				if sp.File == "" || sp.Snap == nil {
					t.Fatalf("target=%d dop=%d: split %+v is not stripe-granular", target, dop, sp)
				}
			}
			got, err := Drain(par)
			if err != nil {
				t.Fatal(err)
			}
			if gotR := render(got); !reflect.DeepEqual(gotR, wantR) {
				t.Errorf("target=%d dop=%d: parallel rows differ\n got %v\nwant %v", target, dop, gotR, wantR)
			}
		}
	}
}

// TestSplitQueueSteal checks the morsel dispenser hands out each split
// exactly once across many concurrent takers.
func TestSplitQueueSteal(t *testing.T) {
	splits := make([]TableSplit, 100)
	for i := range splits {
		splits[i].Loc = fmt.Sprintf("/s%d", i)
	}
	q := NewSplitQueue(splits)
	taken := make(chan string, len(splits))
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			for {
				s, ok := q.take(nil)
				if !ok {
					done <- struct{}{}
					return
				}
				taken <- s.Loc
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	close(taken)
	seen := map[string]bool{}
	for loc := range taken {
		if seen[loc] {
			t.Fatalf("split %s taken twice", loc)
		}
		seen[loc] = true
	}
	if len(seen) != len(splits) {
		t.Fatalf("took %d splits, want %d", len(seen), len(splits))
	}
}
