package exec

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// runDOP executes a query like testWarehouse.run but parallelizes the
// physical tree at the given degree first.
func (w *testWarehouse) runDOP(q string, dop int) ([]string, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	rel, err := analyze.New(w.ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		return nil, err
	}
	ctx := NewContext()
	ctx.DOP = dop
	comp := &Compiler{Ctx: ctx, MakeScan: w.makeScan(ctx)}
	op, err := comp.Compile(rel)
	if err != nil {
		return nil, err
	}
	op, _ = Parallelize(op, ctx, dop)
	rows, err := Drain(op)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out, nil
}

// TestParallelMatchesSerial runs a spread of scan/filter/agg/join shapes at
// several degrees of parallelism and requires the same multiset of rows as
// serial execution.
func TestParallelMatchesSerial(t *testing.T) {
	w := newTestWarehouse(t)
	queries := []string{
		`SELECT item_sk, qty FROM sales`,
		`SELECT item_sk, qty FROM sales WHERE qty > 1`,
		`SELECT ds, COUNT(*), SUM(qty), AVG(qty), MIN(price), MAX(price) FROM sales GROUP BY ds`,
		`SELECT item_sk, SUM(qty) FROM sales GROUP BY item_sk`,
		`SELECT COUNT(*), SUM(price) FROM sales`,
		`SELECT COUNT(DISTINCT item_sk) FROM sales`,
		`SELECT category, SUM(s.qty * s.price) FROM sales s, items i
		   WHERE s.item_sk = i.item_sk GROUP BY category`,
		`SELECT s.item_sk, i.category FROM sales s LEFT JOIN items i
		   ON s.item_sk = i.item_sk AND i.category = 'Sports'`,
		`SELECT item_sk FROM sales WHERE EXISTS
		   (SELECT 1 FROM items WHERE items.item_sk = sales.item_sk AND category = 'Books')`,
		`SELECT item_sk FROM sales WHERE NOT EXISTS
		   (SELECT 1 FROM items WHERE items.item_sk = sales.item_sk AND category = 'Books')`,
		`SELECT ds, item_sk, SUM(qty) FROM sales GROUP BY ROLLUP (ds, item_sk)`,
	}
	for _, q := range queries {
		want, err := w.run(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		sort.Strings(want)
		for _, dop := range []int{2, 4, 7} {
			got, err := w.runDOP(q, dop)
			if err != nil {
				t.Fatalf("dop=%d %s: %v", dop, q, err)
			}
			sort.Strings(got)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("dop=%d %s:\n got %v\nwant %v", dop, q, got, want)
			}
		}
	}
}

// salesScan builds a ScanOp over every partition of the sales table.
func (w *testWarehouse) salesScan(ctx *Context) *ScanOp {
	w.t.Helper()
	tbl, _ := w.ms.GetTable("default", "sales")
	tm := w.ms.Txns()
	valid := tm.GetValidWriteIds(tbl.FullName(), tm.GetSnapshot())
	var splits []TableSplit
	for _, p := range w.ms.PartitionsOf(tbl) {
		d, err := types.Cast(types.NewString(p.Values[0]), tbl.PartKeys[0].Type)
		if err != nil {
			w.t.Fatal(err)
		}
		splits = append(splits, TableSplit{Loc: p.Location, PartValues: []types.Datum{d}, Valid: valid})
	}
	return &ScanOp{FS: w.ms.FS(), Table: tbl, Cols: []int{0, 1}, Splits: splits, Ctx: ctx}
}

// TestParallelOpExchange drives the generic exchange directly: workers
// sharing a morsel queue must emit every split exactly once, and
// per-worker scan stats must merge back on Close.
func TestParallelOpExchange(t *testing.T) {
	w := newTestWarehouse(t)
	ctx := NewContext()
	scan := w.salesScan(ctx)
	scan.Stats = ctx.NewStats("scan")
	par, changed := Parallelize(scan, ctx, 4)
	if !changed {
		t.Fatal("Parallelize reported no change for a multi-split scan")
	}
	pop, ok := par.(*ParallelOp)
	if !ok {
		t.Fatalf("expected ParallelOp, got %T", par)
	}
	// DOP 4 capped at the morsel count: sales has two partition splits.
	if len(pop.Workers) != 2 {
		t.Fatalf("expected 2 workers, got %d", len(pop.Workers))
	}
	rows, err := Drain(pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 8 rows, got %d", len(rows))
	}
	if got := scan.Stats.Rows.Load(); got != 8 {
		t.Fatalf("merged scan stats = %d, want 8", got)
	}
}

// TestParallelHashAggTwoPhase checks the partial/merge path against known
// group results, including AVG and DISTINCT whose states must merge, not
// their results.
func TestParallelHashAggTwoPhase(t *testing.T) {
	w := newTestWarehouse(t)
	got, err := w.runDOP(`SELECT ds, AVG(qty), COUNT(DISTINCT item_sk) FROM sales GROUP BY ds`, 4)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := []string{"1|2.25|4", "2|2.5|4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestParallelMemoryPressure verifies that a build-side overflow inside a
// parallel plan still surfaces ErrMemoryPressure (reoptimization trigger).
func TestParallelMemoryPressure(t *testing.T) {
	w := newTestWarehouse(t)
	st, _ := sql.Parse(`SELECT category, SUM(qty) FROM sales s, items i WHERE s.item_sk = i.item_sk GROUP BY category`)
	rel, err := analyze.New(w.ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.DOP = 4
	ctx.MemoryLimitRows = 2
	comp := &Compiler{Ctx: ctx, MakeScan: w.makeScan(ctx)}
	op, err := comp.Compile(rel)
	if err != nil {
		t.Fatal(err)
	}
	op, _ = Parallelize(op, ctx, 4)
	_, err = Drain(op)
	if _, ok := err.(ErrMemoryPressure); !ok {
		t.Fatalf("expected ErrMemoryPressure, got %v", err)
	}
}

// TestVectorHashCrossKind ensures the vectorized key hash agrees across
// numeric representations that compare equal, so joins between INT,
// DOUBLE and DECIMAL keys keep finding their partners.
func TestVectorHashCrossKind(t *testing.T) {
	iv := vector.New(types.TBigint, 1)
	iv.I64[0] = 3
	dv := vector.New(types.TDouble, 1)
	dv.F64[0] = 3.0
	cv := vector.New(types.TDecimal(7, 2), 1)
	cv.I64[0] = 300 // 3.00
	hi, hd, hc := iv.HashAt(0), dv.HashAt(0), cv.HashAt(0)
	if hi != hd || hi != hc {
		t.Fatalf("hashes differ: int=%x double=%x decimal=%x", hi, hd, hc)
	}
	sv := vector.New(types.TString, 2)
	sv.Str[0], sv.Str[1] = "a", "b"
	if sv.HashAt(0) == sv.HashAt(1) {
		t.Fatal("distinct strings hash equal")
	}
	nv := vector.New(types.TBigint, 1)
	nv.SetNull(0)
	if nv.HashAt(0) != vector.NullHash {
		t.Fatal("null hash mismatch")
	}
}

// TestParallelEarlyClose pulls only part of an exchange's output through
// a LIMIT and closes; workers blocked on the bounded channel must unwind
// without hanging or leaking.
func TestParallelEarlyClose(t *testing.T) {
	w := newTestWarehouse(t)
	for _, q := range []string{
		`SELECT item_sk FROM sales LIMIT 3`,
		`SELECT item_sk FROM sales WHERE qty >= 1 LIMIT 1`,
	} {
		rows, err := w.runDOP(q, 4)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := 3
		if strings.Contains(q, "LIMIT 1") {
			want = 1
		}
		if len(rows) != want {
			t.Fatalf("%s: got %d rows, want %d", q, len(rows), want)
		}
	}
}

// TestSplitQueueSteal checks the morsel dispenser hands out each split
// exactly once across many concurrent takers.
func TestSplitQueueSteal(t *testing.T) {
	splits := make([]TableSplit, 100)
	for i := range splits {
		splits[i].Loc = fmt.Sprintf("/s%d", i)
	}
	q := NewSplitQueue(splits)
	taken := make(chan string, len(splits))
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			for {
				s, ok := q.take(nil)
				if !ok {
					done <- struct{}{}
					return
				}
				taken <- s.Loc
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	close(taken)
	seen := map[string]bool{}
	for loc := range taken {
		if seen[loc] {
			t.Fatalf("split %s taken twice", loc)
		}
		seen[loc] = true
	}
	if len(seen) != len(splits) {
		t.Fatalf("took %d splits, want %d", len(seen), len(splits))
	}
}
