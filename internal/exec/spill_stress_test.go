//go:build stress

package exec

import (
	"math/rand"
	"testing"
	"time"
)

// TestExternalSortPropertyRandomSeed is the seed-randomized twin of
// TestExternalSortProperty: each `go test -tags stress` run exercises
// fresh input sizes, batch shapes and budgets (the hll pattern).
func TestExternalSortPropertyRandomSeed(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 300; trial++ {
		runExternalSortTrial(t, rng)
	}
}
