// Partition-wise hash join (props.go payday 3): when both join sides scan
// tables partitioned on the join keys — every partition column linked to
// the other side by a key equality — co-partitioned directory pairs form
// independent join units. Each unit builds its own small hash table from
// just its right-side directory and probes just its left-side directory,
// so there is no shared build, no build barrier across workers, and no
// exchange: the unit IS the shuffle the storage layout already performed.
// Workers steal whole units from a shared counter; output is the
// concatenation of unit outputs in arrival order, set-equal to the
// shared-build plan (row order across units is nondeterministic, as in
// any exchange).
package exec

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// joinUnit is one co-partitioned pair: left and right splits that agree on
// every linked partition value. Right may be empty for Left/Anti joins —
// the left rows must still probe an empty build.
type joinUnit struct {
	left  []TableSplit
	right []TableSplit
}

// PartitionJoinOp executes a hash join (possibly under a Filter/Project
// chain) as independent per-partition units. Pipeline is the split-less
// template; each unit instantiates it with its own splits on both join
// sides and runs it serially.
type PartitionJoinOp struct {
	Pipeline Operator
	Units    []joinUnit
	DOP      int
	Ctx      *Context

	outTypes []types.T

	exchange
	out  chan *vector.Batch
	next atomic.Int64
}

// Types implements Operator.
func (j *PartitionJoinOp) Types() []types.T {
	if j.outTypes == nil {
		j.outTypes = j.Pipeline.Types()
	}
	return j.outTypes
}

// Open implements Operator. Workers launch at first Next, like every
// exchange, so upstream runtime-filter publishers run first.
func (j *PartitionJoinOp) Open() error {
	j.reset()
	j.out = nil
	j.next.Store(0)
	return nil
}

func (j *PartitionJoinOp) workersWanted() int {
	n := j.DOP
	if len(j.Units) < n {
		n = len(j.Units)
	}
	return n
}

func (j *PartitionJoinOp) start() {
	n := j.begin(j.Ctx, j.workersWanted())
	j.out = make(chan *vector.Batch, 2*n)
	for w := 0; w < n; w++ {
		j.wg.Add(1)
		go func() {
			defer j.wg.Done()
			j.runWorker()
		}()
	}
	go func() {
		j.wg.Wait()
		close(j.out)
	}()
}

// runWorker steals units until none remain, running each unit's pipeline
// to completion. The per-unit join closes before the next steal, so at
// most one build table per worker is resident at a time.
func (j *PartitionJoinOp) runWorker() {
	for {
		select {
		case <-j.done:
			return
		default:
		}
		i := int(j.next.Add(1) - 1)
		if i >= len(j.Units) {
			return
		}
		if err := j.runUnit(j.Units[i]); err != nil {
			j.fail(err)
			return
		}
	}
}

func (j *PartitionJoinOp) runUnit(u joinUnit) error {
	op := cloneUnitPipeline(j.Pipeline, u)
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	for {
		select {
		case <-j.done:
			return nil
		default:
		}
		if err := j.Ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		select {
		case j.out <- b:
		case <-j.done:
			return nil
		}
	}
}

// Next implements Operator.
func (j *PartitionJoinOp) Next() (*vector.Batch, error) {
	if !j.started {
		j.start()
	}
	if b, ok := <-j.out; ok {
		return b, nil
	}
	return nil, j.firstErr()
}

// Close implements Operator. Unit pipelines close inside the workers; only
// the template (never opened) and the exchange remain.
//lint:ignore close-and-cancel Pipeline is a never-opened template; the clones made from it close inside runUnit
func (j *PartitionJoinOp) Close() error {
	j.shutdown()
	return nil
}

// cloneUnitPipeline copies the template chain, substituting the unit's
// splits on both sides of the join. Compiled expressions are pure and
// RuntimeStats counters are atomic, so clones share both.
func cloneUnitPipeline(op Operator, u joinUnit) Operator {
	switch x := op.(type) {
	case *HashJoinOp:
		return &HashJoinOp{
			Left:  cloneWithSplits(x.Left, u.left),
			Right: cloneWithSplits(x.Right, u.right),
			Kind:  x.Kind, LeftKeys: x.LeftKeys, RightKeys: x.RightKeys,
			Residual: x.Residual, Ctx: x.Ctx, Stats: x.Stats,
		}
	case *FilterOp:
		return &FilterOp{Input: cloneUnitPipeline(x.Input, u), Pred: x.Pred, Stats: x.Stats}
	case *ProjectOp:
		return &ProjectOp{Input: cloneUnitPipeline(x.Input, u), Exprs: x.Exprs, Out: x.Out, Stats: x.Stats}
	}
	return op
}

// cloneWithSplits copies a simple scan chain, substituting the base scan's
// split list. No shared queue: the unit owns its splits outright.
func cloneWithSplits(op Operator, splits []TableSplit) Operator {
	switch x := op.(type) {
	case *ScanOp:
		return &ScanOp{
			FS: x.FS, Table: x.Table, Cols: x.Cols, Meta: x.Meta,
			Sarg: x.Sarg, RF: x.RF, Ctx: x.Ctx, Stats: x.Stats, Splits: splits,
		}
	case *FilterOp:
		return &FilterOp{Input: cloneWithSplits(x.Input, splits), Pred: x.Pred, Stats: x.Stats}
	case *ProjectOp:
		return &ProjectOp{Input: cloneWithSplits(x.Input, splits), Exprs: x.Exprs, Out: x.Out, Stats: x.Stats}
	}
	return op
}

// simpleScanChain unwraps a Filter/Project chain to its base scan; nested
// joins disqualify (a unit clone would re-run their build per unit).
func simpleScanChain(op Operator) (*ScanOp, bool) {
	switch x := op.(type) {
	case *ScanOp:
		return x, true
	case *FilterOp:
		return simpleScanChain(x.Input)
	case *ProjectOp:
		return simpleScanChain(x.Input)
	}
	return nil, false
}

// chainJoin unwraps a Filter/Project chain to the hash join it covers.
func chainJoin(op Operator) (*HashJoinOp, bool) {
	switch x := op.(type) {
	case *HashJoinOp:
		return x, true
	case *FilterOp:
		return chainJoin(x.Input)
	case *ProjectOp:
		return chainJoin(x.Input)
	}
	return nil, false
}

// partitionJoin recognizes a pipeline whose hash join has both sides
// scanning tables value-partitioned on the join keys, and rewrites it into
// a PartitionJoinOp. Requirements, each tied to the set-equivalence or
// publish-once arguments in the package comment:
//
//   - probe-side kinds only (Inner/Left/Semi/Anti): right/full outer need
//     a global unmatched-build pass;
//   - no BuildFilter: the runtime filter publishes once, but every unit
//     would build;
//   - both sides are simple scan chains over whole-directory splits with
//     no dynamic partition pruning bound (pruning decides on the shared
//     queue; units pre-assign splits);
//   - the key equalities link EVERY partition column of both sides: rows
//     with equal keys then agree on all partition values, so all matches
//     live inside one co-partitioned unit.
func (p *parallelizer) partitionJoin(op Operator) (Operator, bool) {
	if !p.ctx.propsOn() {
		return nil, false
	}
	x, ok := chainJoin(op)
	if !ok {
		return nil, false
	}
	switch x.Kind {
	case plan.Inner, plan.Left, plan.Semi, plan.Anti:
	default:
		return nil, false
	}
	if x.BuildFilter != nil || len(x.LeftKeys) == 0 || x.Right == nil {
		return nil, false
	}
	ls, lok := simpleScanChain(x.Left)
	rs, rok := simpleScanChain(x.Right)
	if !lok || !rok || len(ls.Prune) > 0 || len(rs.Prune) > 0 {
		return nil, false
	}
	if !wholeDirSplits(ls) || !wholeDirSplits(rs) {
		return nil, false
	}
	_, lm, lok := scanPartInfo(x.Left)
	_, rm, rok := scanPartInfo(x.Right)
	if !lok || !rok {
		return nil, false
	}
	// Collect linked partition-key pairs from bare-column key equalities.
	type link struct{ lpk, rpk int }
	var links []link
	lcov := map[int]bool{}
	rcov := map[int]bool{}
	for i := range x.LeftKeys {
		lc, ok1 := x.LeftKeys[i].ColRef()
		rc, ok2 := x.RightKeys[i].ColRef()
		if !ok1 || !ok2 {
			continue
		}
		lpk, lIsPart := lm[lc]
		rpk, rIsPart := rm[rc]
		if !lIsPart || !rIsPart {
			continue
		}
		links = append(links, link{lpk, rpk})
		lcov[lpk] = true
		rcov[rpk] = true
	}
	if len(lcov) != len(ls.Table.PartKeys) || len(rcov) != len(rs.Table.PartKeys) {
		return nil, false
	}
	// Co-partition the split lists on the linked values. Units are created
	// in left-split order for a deterministic plan; right splits without a
	// left counterpart can never produce output for these kinds.
	ukey := func(sp TableSplit, leftSide bool) string {
		var b strings.Builder
		for _, l := range links {
			pk := l.rpk
			if leftSide {
				pk = l.lpk
			}
			b.WriteString(partValueKey(sp.PartValues, pk))
		}
		return b.String()
	}
	order := []string{}
	units := map[string]*joinUnit{}
	for _, sp := range ls.Splits {
		k := ukey(sp, true)
		u, seen := units[k]
		if !seen {
			u = &joinUnit{}
			units[k] = u
			order = append(order, k)
		}
		u.left = append(u.left, sp)
	}
	for _, sp := range rs.Splits {
		if u, seen := units[ukey(sp, false)]; seen {
			u.right = append(u.right, sp)
		}
	}
	var list []joinUnit
	for _, k := range order {
		u := units[k]
		if len(u.right) == 0 && (x.Kind == plan.Inner || x.Kind == plan.Semi) {
			continue // no build rows: these kinds emit nothing
		}
		list = append(list, *u)
	}
	if len(list) < 2 {
		return nil, false
	}
	return &PartitionJoinOp{Pipeline: op, Units: list, DOP: p.dop, Ctx: p.ctx}, true
}

// partValueKey encodes one partition value for unit grouping; kind is
// included so the encoding never collides across types.
func partValueKey(vals []types.Datum, pk int) string {
	if pk >= len(vals) {
		return "?;"
	}
	d := vals[pk]
	if d.Null {
		return "n;"
	}
	return fmt.Sprintf("%d:%d:%g:%s;", d.K, d.I, d.F, d.S)
}
