package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// HashJoinOp joins two inputs. The right input is the build side. Equi-key
// pairs drive the hash table; Residual (over the concatenated row) is
// evaluated per candidate match. Semi/Anti emit only left columns; Single
// enforces the scalar-subquery at-most-one-match guarantee.
type HashJoinOp struct {
	Left, Right Operator
	Kind        plan.JoinKind
	LeftKeys    []*CompiledExpr // over left row
	RightKeys   []*CompiledExpr // over right row
	Residual    *CompiledExpr   // over left++right row, may be nil
	Ctx         *Context
	Stats       *RuntimeStats
	// BuildFilter, when non-nil, receives the build-side key values to
	// populate a dynamic semijoin reducer (paper §4.6).
	BuildFilter *RuntimeFilter

	outTypes  []types.T
	built     bool
	rows      [][]types.Datum // build rows
	buildKeys [][]types.Datum // build-side key values, parallel to rows
	index     map[uint64][]int
	matched   []bool
	leftW     int
	rightW    int
	emittedRt bool
	leftDone  bool
	pending   *batchBuilder
}

// Types implements Operator.
func (j *HashJoinOp) Types() []types.T {
	if j.outTypes == nil {
		lt := j.Left.Types()
		switch j.Kind {
		case plan.Semi, plan.Anti:
			j.outTypes = lt
		default:
			j.outTypes = append(append([]types.T{}, lt...), j.Right.Types()...)
		}
		j.leftW = len(lt)
		j.rightW = len(j.Right.Types())
	}
	return j.outTypes
}

// Open implements Operator.
func (j *HashJoinOp) Open() error {
	j.Types()
	j.built = false
	j.rows = nil
	j.index = nil
	j.matched = nil
	j.emittedRt = false
	j.leftDone = false
	if err := j.Left.Open(); err != nil {
		return err
	}
	return j.Right.Open()
}

func (j *HashJoinOp) build() error {
	j.index = make(map[uint64][]int)
	limit := int64(0)
	if j.Ctx != nil {
		limit = j.Ctx.MemoryLimitRows
	}
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		keyCols := make([]*vector.Vector, len(j.RightKeys))
		for i, k := range j.RightKeys {
			v, err := k.Eval(b)
			if err != nil {
				return err
			}
			keyCols[i] = v
		}
		for i := 0; i < b.N; i++ {
			r := b.RowIdx(i)
			row := b.Row(i)
			idx := len(j.rows)
			j.rows = append(j.rows, row)
			keys := make([]types.Datum, len(keyCols))
			for k, kc := range keyCols {
				keys[k] = kc.Get(r)
			}
			j.buildKeys = append(j.buildKeys, keys)
			if limit > 0 && int64(len(j.rows)) > limit {
				return ErrMemoryPressure{Operator: "hash join build", Rows: int64(len(j.rows))}
			}
			h := hashKeyAt(keyCols, r)
			j.index[h] = append(j.index[h], idx)
			if j.BuildFilter != nil && len(keyCols) > 0 {
				d := keyCols[0].Get(r)
				if !d.Null {
					updateFilter(j.BuildFilter, d)
				}
			}
		}
	}
	j.matched = make([]bool, len(j.rows))
	if j.BuildFilter != nil {
		finishFilter(j.BuildFilter)
		j.BuildFilter.Publish()
	}
	j.built = true
	return nil
}

func updateFilter(f *RuntimeFilter, d types.Datum) {
	if f.Bloom == nil {
		f.Bloom = NewBloom(4096)
	}
	f.Bloom.Add(d.Hash())
	if f.Min.K == types.Unknown || d.Compare(f.Min) < 0 {
		f.Min = d
	}
	if f.Max.K == types.Unknown || d.Compare(f.Max) > 0 {
		f.Max = d
	}
	if f.Values != nil || len(f.Values) < 10000 {
		f.Values = append(f.Values, d)
	}
}

func finishFilter(f *RuntimeFilter) {
	if len(f.Values) > 10000 {
		f.Values = nil // too many values for dynamic partition pruning
	}
}

func hashKeyAt(cols []*vector.Vector, r int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h = h*1099511628211 ^ c.Get(r).Hash()
	}
	return h
}

// batchBuilder accumulates output rows into batches, queueing completed
// batches so a single probe batch may fan out beyond one output batch.
type batchBuilder struct {
	ts    []types.T
	b     *vector.Batch
	n     int
	cap   int
	ready []*vector.Batch
}

func newBatchBuilder(ts []types.T) *batchBuilder {
	return &batchBuilder{ts: ts, cap: vector.BatchSize}
}

func (bb *batchBuilder) add(row []types.Datum) {
	if bb.b == nil {
		bb.b = vector.NewBatch(bb.ts, bb.cap)
		bb.n = 0
	}
	for c, d := range row {
		bb.b.Cols[c].Set(bb.n, d)
	}
	bb.n++
	if bb.n >= bb.cap {
		bb.b.N = bb.n
		bb.ready = append(bb.ready, bb.b)
		bb.b = nil
		bb.n = 0
	}
}

func (bb *batchBuilder) full() bool { return len(bb.ready) > 0 }

func (bb *batchBuilder) take() *vector.Batch {
	if len(bb.ready) > 0 {
		out := bb.ready[0]
		bb.ready = bb.ready[1:]
		return out
	}
	if bb.b == nil || bb.n == 0 {
		return nil
	}
	out := bb.b
	out.N = bb.n
	bb.b = nil
	bb.n = 0
	return out
}

// Next implements Operator.
func (j *HashJoinOp) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
		j.pending = newBatchBuilder(j.Types())
	}
	for {
		if j.pending.full() {
			out := j.pending.take()
			j.bumpStats(out)
			return out, nil
		}
		if j.leftDone {
			// Right/full outer: emit unmatched build rows.
			if (j.Kind == plan.Right || j.Kind == plan.Full) && !j.emittedRt {
				j.emittedRt = true
				nullLeft := make([]types.Datum, j.leftW)
				lt := j.Left.Types()
				for i := range nullLeft {
					nullLeft[i] = types.NullOf(lt[i].Kind)
				}
				for i, m := range j.matched {
					if !m {
						j.pending.add(append(append([]types.Datum{}, nullLeft...), j.rows[i]...))
					}
				}
			}
			out := j.pending.take()
			j.bumpStats(out)
			return out, nil
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.leftDone = true
			continue
		}
		if err := j.probeBatch(b); err != nil {
			return nil, err
		}
		if out := j.pending.take(); out != nil {
			j.bumpStats(out)
			return out, nil
		}
	}
}

func (j *HashJoinOp) bumpStats(b *vector.Batch) {
	if j.Stats != nil && b != nil {
		j.Stats.Rows.Add(int64(b.N))
	}
}

func (j *HashJoinOp) probeBatch(b *vector.Batch) error {
	keyCols := make([]*vector.Vector, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		v, err := k.Eval(b)
		if err != nil {
			return err
		}
		keyCols[i] = v
	}
	nested := len(j.LeftKeys) == 0
	for i := 0; i < b.N; i++ {
		r := b.RowIdx(i)
		leftRow := b.Row(i)
		var candidates []int
		if nested {
			candidates = allRows(len(j.rows))
		} else {
			nullKey := false
			for _, kc := range keyCols {
				if kc.IsNull(r) {
					nullKey = true
					break
				}
			}
			if !nullKey {
				candidates = j.index[hashKeyAt(keyCols, r)]
			}
		}
		matches := 0
		for _, ci := range candidates {
			right := j.rows[ci]
			if !nested && !j.keysEqual(keyCols, r, ci) {
				continue
			}
			if j.Residual != nil {
				ok, err := j.evalResidual(leftRow, right)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			matches++
			j.matched[ci] = true
			switch j.Kind {
			case plan.Semi:
				// emit left once below
			case plan.Anti:
				// no emit
			case plan.Single:
				if matches > 1 {
					return fmt.Errorf("exec: scalar subquery returned more than one row")
				}
				j.pending.add(append(append([]types.Datum{}, leftRow...), right...))
			default:
				j.pending.add(append(append([]types.Datum{}, leftRow...), right...))
			}
			if j.Kind == plan.Semi {
				break
			}
		}
		switch j.Kind {
		case plan.Semi:
			if matches > 0 {
				j.pending.add(leftRow)
			}
		case plan.Anti:
			if matches == 0 {
				j.pending.add(leftRow)
			}
		case plan.Left, plan.Full, plan.Single:
			if matches == 0 {
				row := append([]types.Datum{}, leftRow...)
				rt := j.Right.Types()
				for _, t := range rt {
					row = append(row, types.NullOf(t.Kind))
				}
				j.pending.add(row)
			}
		}
	}
	return nil
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (j *HashJoinOp) keysEqual(probeCols []*vector.Vector, r int, buildIdx int) bool {
	keys := j.buildKeys[buildIdx]
	for k, kc := range probeCols {
		pd := kc.Get(r)
		bd := keys[k]
		if pd.Null || bd.Null || pd.Compare(bd) != 0 {
			return false
		}
	}
	return true
}

// evalOnRow evaluates a compiled expression against a single materialized
// row by staging it into a one-row batch.
func evalOnRow(e *CompiledExpr, row []types.Datum) (types.Datum, error) {
	ts := make([]types.T, len(row))
	for i, d := range row {
		ts[i] = types.T{Kind: d.K}
		if d.K == types.Decimal {
			ts[i] = types.TDecimal(18, d.DecimalScale())
		}
	}
	b := vector.NewBatch(ts, 1)
	for c, d := range row {
		b.Cols[c].Set(0, d)
	}
	b.N = 1
	v, err := e.Eval(b)
	if err != nil {
		return types.Datum{}, err
	}
	return v.Get(0), nil
}

func (j *HashJoinOp) evalResidual(left, right []types.Datum) (bool, error) {
	combined := append(append([]types.Datum{}, left...), right...)
	d, err := evalOnRow(j.Residual, combined)
	if err != nil {
		return false, err
	}
	return !d.Null && d.I != 0, nil
}

// Close implements Operator.
func (j *HashJoinOp) Close() error {
	j.rows, j.index = nil, nil
	if err := j.Left.Close(); err != nil {
		j.Right.Close()
		return err
	}
	return j.Right.Close()
}
