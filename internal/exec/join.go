package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/spill"
	"repro/internal/types"
	"repro/internal/vector"
)

// joinSpillParts is the Grace fan-out: spilled build and probe rows
// partition by key hash across this many file sets, and the
// partition-by-partition probe holds one build partition at a time.
const joinSpillParts = 16

// HashJoinOp joins two inputs. The right input is the build side. Equi-key
// pairs drive the hash table; Residual (over the concatenated row) is
// evaluated per candidate match. Semi/Anti emit only left columns; Single
// enforces the scalar-subquery at-most-one-match guarantee.
//
// The build is partitioned: rows are materialized in parallel (when
// Ctx.DOP > 1) and fanned into hash-disjoint partitions, each with its own
// index — the parallel partitioned build of morsel-driven engines. A
// Shared build lets parallel probe-pipeline clones probe one table.
//
// The build is memory-governed: when the query budget denies growth the
// join Grace-partitions — build rows spill to hash-partitioned scratch
// files, probe rows partition to scratch the same way, and the probe then
// runs partition by partition, each small enough to index in memory.
// Matching keys hash equal, so every match pair lands in the same
// partition and the per-partition probes reuse the in-memory probe path
// unchanged.
type HashJoinOp struct {
	Left, Right Operator
	Kind        plan.JoinKind
	LeftKeys    []*CompiledExpr // over left row
	RightKeys   []*CompiledExpr // over right row
	Residual    *CompiledExpr   // over left++right row, may be nil
	Ctx         *Context
	Stats       *RuntimeStats
	// BuildFilter, when non-nil, receives the build-side key values to
	// populate a dynamic semijoin reducer (paper §4.6).
	BuildFilter *RuntimeFilter
	// Shared, when non-nil, holds the build input and its partitioned hash
	// table, built exactly once and probed by every worker clone. Clones
	// have a nil Right.
	Shared *sharedBuild

	outTypes  []types.T
	rtTypes   []types.T
	built     bool
	parts     []buildPartition
	leftW     int
	rightW    int
	emittedRt bool
	leftDone  bool
	pending   *batchBuilder

	// Grace state: non-nil graceBuild means the build side spilled and the
	// probe runs partition by partition.
	res        *Reservation
	graceBuild [][]string          // build partition -> spill files
	probeBufs  [][][]types.Datum   // buffered probe rows per partition
	probeFiles [][]string          // probe partition -> spill files
	gracePart  int                 // next partition to load
	partLoaded bool
	probePull  func() (*vector.Batch, error) // loaded partition's probe replay
}

// buildPartition is one hash-disjoint slice of the build side.
type buildPartition struct {
	rows    [][]types.Datum
	keys    [][]types.Datum // build-side key values, parallel to rows
	index   map[uint64][]int
	matched []bool // allocated only for right/full outer joins
}

// sharedBuild owns the build input of a parallelized join: the first probe
// worker to need the hash table builds it (opening, draining and closing
// the input exactly once); the rest wait and share it. When the build
// Grace-spilled, grace carries the partition files every clone reads (each
// clone spills and replays its own probe share independently) and
// cleanOnce removes them exactly once at Close, after the exchange has
// finished every clone.
type sharedBuild struct {
	right     Operator
	once      sync.Once
	parts     []buildPartition
	grace     [][]string
	err       error
	cleanOnce sync.Once
}

// buildRow is a materialized build-side row with its key hash, staged
// thread-locally before partition fan-in.
type buildRow struct {
	row  []types.Datum
	keys []types.Datum
	h    uint64
}

// Types implements Operator.
func (j *HashJoinOp) Types() []types.T {
	if j.outTypes == nil {
		lt := j.Left.Types()
		rt := j.Right.Types()
		switch j.Kind {
		case plan.Semi, plan.Anti:
			j.outTypes = lt
		default:
			j.outTypes = append(append([]types.T{}, lt...), rt...)
		}
		j.leftW = len(lt)
		j.rightW = len(rt)
		j.rtTypes = rt
	}
	return j.outTypes
}

// Open implements Operator.
func (j *HashJoinOp) Open() error {
	j.Types()
	j.built = false
	j.parts = nil
	j.emittedRt = false
	j.leftDone = false
	j.graceBuild, j.probeBufs, j.probeFiles = nil, nil, nil
	j.gracePart, j.partLoaded, j.probePull = 0, false, nil
	j.res = nil
	if j.Ctx != nil {
		j.res = j.Ctx.Governor().Reserve("hashjoin")
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	if j.Right != nil && j.Shared == nil {
		return j.Right.Open()
	}
	return nil
}

// build produces the partitioned hash table — or, when the build side
// spilled, the Grace partition files — publishing the semijoin reducer
// exactly once even on failure so parallel scan workers blocked on it can
// always proceed.
func (j *HashJoinOp) build() error {
	var err error
	if j.Shared != nil {
		j.Shared.once.Do(func() {
			j.Shared.parts, j.Shared.grace, j.Shared.err = j.runSharedBuild()
		})
		j.parts, j.graceBuild, err = j.Shared.parts, j.Shared.grace, j.Shared.err
	} else {
		j.parts, j.graceBuild, err = j.buildPartitions(j.Right)
		if j.BuildFilter != nil {
			j.finishBuildFilter(err)
		}
	}
	if err != nil {
		return err
	}
	if (j.Kind == plan.Right || j.Kind == plan.Full) && j.graceBuild == nil {
		for pi := range j.parts {
			j.parts[pi].matched = make([]bool, len(j.parts[pi].rows))
		}
	}
	j.built = true
	return nil
}

func (j *HashJoinOp) runSharedBuild() ([]buildPartition, [][]string, error) {
	var parts []buildPartition
	var grace [][]string
	err := j.Shared.right.Open()
	if err == nil {
		parts, grace, err = j.buildPartitions(j.Shared.right)
		if cerr := j.Shared.right.Close(); err == nil {
			err = cerr
		}
	}
	if j.BuildFilter != nil {
		j.finishBuildFilter(err)
	}
	return parts, grace, err
}

// finishBuildFilter publishes the semijoin reducer; a failed build resets
// it to a pass-through first so no rows are wrongly pruned.
func (j *HashJoinOp) finishBuildFilter(err error) {
	f := j.BuildFilter
	if err != nil {
		f.Bloom, f.Values = nil, nil
		f.Min, f.Max = types.Datum{}, types.Datum{}
	} else {
		finishFilter(f)
	}
	f.Publish()
}

// buildPartitions drains the build input and constructs the partitioned
// hash table. With Ctx.DOP > 1 it borrows executor slots: workers consume
// batches from a feeder channel, materialize rows thread-locally, then
// each worker owns one partition and collects its rows lock-free.
//
// The parallel staging runs until the governor first denies a
// reservation: the workers stop, everything staged Grace-flushes to
// hash-partitioned spill files, and the rest of the input continues on
// the single-threaded spilling loop — so a budgeted build that fits keeps
// the full parallel speedup and only an actual overflow pays the serial
// Grace path, returning partition files instead of an in-memory table.
// Nested-loop builds (no equi keys) cannot Grace-partition — every probe
// row must see every build row — so they force-grow instead.
func (j *HashJoinOp) buildPartitions(right Operator) ([]buildPartition, [][]string, error) {
	dop, release := 1, func() {}
	if j.Ctx != nil && j.Ctx.DOP > 1 {
		extra, rel := j.Ctx.AcquireExtra(j.Ctx.DOP - 1)
		dop, release = 1+extra, rel
	}
	defer release()

	var limit int64
	if j.Ctx != nil {
		limit = j.Ctx.MemoryLimitRows
	}
	var total atomic.Int64
	locals := make([][]buildRow, dop)
	_, spillable := j.Ctx.spillTarget()
	canGrace := spillable && len(j.RightKeys) > 0

	var err error
	if dop > 1 {
		// Parallel staging runs until the first denied reservation: the
		// workers stop, the staged rows Grace-flush, and the remainder of
		// the input continues on the serial spilling loop below. Budgeted
		// queries whose build fits keep the full parallel build.
		var graceNeeded atomic.Bool
		feed := make(chan *vector.Batch, dop)
		errs := make([]error, dop)
		var failed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < dop; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for b := range feed {
					if errs[w] != nil {
						continue // drain after failure
					}
					var sz int64
					if sz, errs[w] = j.consumeBuildBatch(b, &locals[w], &total, limit); errs[w] != nil {
						failed.Store(true)
					}
					if !j.res.Grow(sz) {
						// Staged either way; keep accounting exact and
						// signal the Grace switch (unless this build can
						// only ever stay in memory).
						j.res.ForceGrow(sz)
						if canGrace {
							graceNeeded.Store(true)
						}
					}
				}
			}(w)
		}
		for !failed.Load() && !graceNeeded.Load() {
			if err = j.Ctx.CheckCanceled(); err != nil {
				break
			}
			b, ferr := right.Next()
			if ferr != nil {
				err = ferr
				break
			}
			if b == nil {
				break
			}
			feed <- b
		}
		close(feed)
		wg.Wait()
		for _, werr := range errs {
			if err == nil && werr != nil {
				err = werr
			}
		}
		if err == nil && graceNeeded.Load() {
			// Hand every worker's staging to the serial loop's slot and
			// flush it as the first Grace partitions.
			for w := 1; w < dop; w++ {
				locals[0] = append(locals[0], locals[w]...)
				locals[w] = nil
			}
			err = j.flushBuildSpill(&locals[0])
		}
	}
	if err == nil && (dop == 1 || j.graceBuild != nil) {
		// Serial: consume inline (the whole input, or whatever the
		// parallel staging left after the Grace switch).
		for err == nil {
			if err = j.Ctx.CheckCanceled(); err != nil {
				break
			}
			var b *vector.Batch
			var sz int64
			b, err = right.Next()
			if err != nil || b == nil {
				break
			}
			sz, err = j.consumeBuildBatch(b, &locals[0], &total, limit)
			if err != nil || j.res.Grow(sz) {
				continue
			}
			// The staged rows are resident either way; take the bytes,
			// then Grace-flush once enough has accumulated. Nested-loop
			// builds (no equi keys) can never flush.
			j.res.ForceGrow(sz)
			if !canGrace || !j.res.ShouldSpill() {
				continue
			}
			err = j.flushBuildSpill(&locals[0])
		}
	}
	if err != nil {
		return nil, nil, err
	}

	if j.graceBuild != nil {
		// The build spilled at least once: flush the staged remainder so
		// the whole build side is on disk, partitioned by key hash.
		if err := j.flushBuildSpill(&locals[0]); err != nil {
			return nil, nil, err
		}
		return nil, j.graceBuild, nil
	}

	// Partition fan-in: worker p collects every staged row whose hash maps
	// to partition p. Lock-free — each partition has exactly one writer.
	parts := make([]buildPartition, dop)
	var wg sync.WaitGroup
	for p := 0; p < dop; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			part := &parts[p]
			part.index = make(map[uint64][]int)
			for _, local := range locals {
				for i := range local {
					br := &local[i]
					if dop > 1 && int(br.h%uint64(dop)) != p {
						continue
					}
					idx := len(part.rows)
					part.rows = append(part.rows, br.row)
					part.keys = append(part.keys, br.keys)
					part.index[br.h] = append(part.index[br.h], idx)
				}
			}
		}(p)
	}
	wg.Wait()

	if j.BuildFilter != nil && len(j.RightKeys) > 0 {
		for pi := range parts {
			for _, keys := range parts[pi].keys {
				if len(keys) > 0 && !keys[0].Null {
					updateFilter(j.BuildFilter, keys[0])
				}
			}
		}
	}
	return parts, nil, nil
}

// flushBuildSpill Grace-partitions the staged build rows into per-partition
// spill files — each row serialized as its key hash, key values and data
// row, so partition reloads rebuild the hash index without re-evaluating
// key expressions — and frees their memory. The semijoin reducer is fed
// here, since spilled rows never reach the in-memory filter pass.
func (j *HashJoinOp) flushBuildSpill(local *[]buildRow) error {
	if j.graceBuild == nil {
		j.graceBuild = make([][]string, joinSpillParts)
	}
	buckets := make([][][]types.Datum, joinSpillParts)
	for i := range *local {
		br := &(*local)[i]
		if j.BuildFilter != nil && len(br.keys) > 0 && !br.keys[0].Null {
			updateFilter(j.BuildFilter, br.keys[0])
		}
		p := int(br.h % joinSpillParts)
		row := make([]types.Datum, 0, 1+len(br.keys)+len(br.row))
		row = append(row, types.NewBigint(int64(br.h)))
		row = append(row, br.keys...)
		row = append(row, br.row...)
		buckets[p] = append(buckets[p], row)
	}
	for p, rows := range buckets {
		if len(rows) == 0 {
			continue
		}
		path, err := writeRunFile(j.Ctx, fmt.Sprintf("join_build_p%02d", p), rows)
		if err != nil {
			return err
		}
		j.graceBuild[p] = append(j.graceBuild[p], path)
	}
	*local = nil
	j.res.Release()
	return nil
}

// consumeBuildBatch materializes one build batch into a worker-local
// staging area, hashing keys column-at-a-time. It returns the estimated
// bytes staged, which the caller accounts against the memory governor.
func (j *HashJoinOp) consumeBuildBatch(b *vector.Batch, local *[]buildRow, total *atomic.Int64, limit int64) (int64, error) {
	keyCols := make([]*vector.Vector, len(j.RightKeys))
	for i, k := range j.RightKeys {
		v, err := k.Eval(b)
		if err != nil {
			return 0, err
		}
		keyCols[i] = v
	}
	hs := hashKeys(keyCols, b)
	var sz int64
	for i := 0; i < b.N; i++ {
		r := b.RowIdx(i)
		keys := make([]types.Datum, len(keyCols))
		for k, kc := range keyCols {
			keys[k] = kc.Get(r)
		}
		row := b.Row(i)
		*local = append(*local, buildRow{row: row, keys: keys, h: hs[i]})
		sz += rowBytes(row) + rowBytes(keys) + 16
	}
	if n := total.Add(int64(b.N)); limit > 0 && n > limit {
		return sz, ErrMemoryPressure{Operator: "hash join build", Rows: n}
	}
	return sz, nil
}

func updateFilter(f *RuntimeFilter, d types.Datum) {
	if f.Bloom == nil {
		f.Bloom = NewBloom(4096)
	}
	f.Bloom.Add(d.Hash())
	if f.Min.K == types.Unknown || d.Compare(f.Min) < 0 {
		f.Min = d
	}
	if f.Max.K == types.Unknown || d.Compare(f.Max) > 0 {
		f.Max = d
	}
	if f.Values != nil || len(f.Values) < 10000 {
		f.Values = append(f.Values, d)
	}
}

func finishFilter(f *RuntimeFilter) {
	if len(f.Values) > 10000 {
		f.Values = nil // too many values for dynamic partition pruning
	}
}

// hashKeys computes the combined key hash of every live row in the batch,
// column-at-a-time over the key vectors — no per-row datum materialization
// on the probe hot path.
func hashKeys(cols []*vector.Vector, b *vector.Batch) []uint64 {
	hs := make([]uint64, b.N)
	for i := range hs {
		hs[i] = vector.HashSeed
	}
	for _, c := range cols {
		c.HashInto(b.Sel, b.N, hs)
	}
	return hs
}

// batchBuilder accumulates output rows into batches, queueing completed
// batches so a single probe batch may fan out beyond one output batch.
type batchBuilder struct {
	ts    []types.T
	b     *vector.Batch
	n     int
	cap   int
	ready []*vector.Batch
}

func newBatchBuilder(ts []types.T) *batchBuilder {
	return &batchBuilder{ts: ts, cap: vector.BatchSize}
}

func (bb *batchBuilder) add(row []types.Datum) {
	if bb.b == nil {
		bb.b = vector.NewBatch(bb.ts, bb.cap)
		bb.n = 0
	}
	for c, d := range row {
		bb.b.Cols[c].Set(bb.n, d)
	}
	bb.n++
	if bb.n >= bb.cap {
		bb.b.N = bb.n
		bb.ready = append(bb.ready, bb.b)
		bb.b = nil
		bb.n = 0
	}
}

func (bb *batchBuilder) full() bool { return len(bb.ready) > 0 }

func (bb *batchBuilder) take() *vector.Batch {
	if len(bb.ready) > 0 {
		out := bb.ready[0]
		bb.ready = bb.ready[1:]
		return out
	}
	if bb.b == nil || bb.n == 0 {
		return nil
	}
	out := bb.b
	out.N = bb.n
	bb.b = nil
	bb.n = 0
	return out
}

// Next implements Operator.
func (j *HashJoinOp) Next() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
		j.pending = newBatchBuilder(j.Types())
	}
	if j.graceBuild != nil {
		return j.graceNext()
	}
	for {
		if j.pending.full() {
			out := j.pending.take()
			j.bumpStats(out)
			return out, nil
		}
		if j.leftDone {
			// Right/full outer: emit unmatched build rows.
			if (j.Kind == plan.Right || j.Kind == plan.Full) && !j.emittedRt {
				j.emittedRt = true
				for pi := range j.parts {
					j.emitUnmatched(&j.parts[pi])
				}
			}
			out := j.pending.take()
			j.bumpStats(out)
			return out, nil
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.leftDone = true
			continue
		}
		if err := j.probeBatch(b); err != nil {
			return nil, err
		}
		if out := j.pending.take(); out != nil {
			j.bumpStats(out)
			return out, nil
		}
	}
}

func (j *HashJoinOp) bumpStats(b *vector.Batch) {
	if j.Stats != nil && b != nil {
		j.Stats.Rows.Add(int64(b.N))
	}
}

// graceNext drives the spilled join: first the whole probe input
// partitions to scratch by key hash, then each partition's build rows load
// into a one-partition hash table and its probe rows replay through the
// ordinary probe path (len(parts) == 1, so every replayed row probes the
// loaded partition). Right/full outer joins emit their unmatched build
// rows per partition, right after that partition's probe finishes.
func (j *HashJoinOp) graceNext() (*vector.Batch, error) {
	if !j.leftDone {
		for {
			if err := j.Ctx.CheckCanceled(); err != nil {
				return nil, err
			}
			b, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if err := j.spillProbeBatch(b); err != nil {
				return nil, err
			}
		}
		if err := j.flushProbeBufs(); err != nil {
			return nil, err
		}
		j.leftDone = true
	}
	for {
		if j.pending.full() {
			out := j.pending.take()
			j.bumpStats(out)
			return out, nil
		}
		if j.partLoaded {
			b, err := j.probePull()
			if err != nil {
				return nil, err
			}
			if b != nil {
				if err := j.probeBatch(b); err != nil {
					return nil, err
				}
				if out := j.pending.take(); out != nil {
					j.bumpStats(out)
					return out, nil
				}
				continue
			}
			// Partition exhausted: emit its unmatched build rows (right/
			// full), then drop it and its files.
			if j.Kind == plan.Right || j.Kind == plan.Full {
				j.emitUnmatched(&j.parts[0])
			}
			j.freeGracePart()
			continue
		}
		if j.gracePart >= joinSpillParts {
			out := j.pending.take()
			j.bumpStats(out)
			return out, nil
		}
		if err := j.loadGracePart(); err != nil {
			return nil, err
		}
	}
}

// spillProbeBatch partitions one probe batch into per-partition buffers by
// key hash, flushing every buffer to scratch when the governor denies the
// growth.
func (j *HashJoinOp) spillProbeBatch(b *vector.Batch) error {
	keyCols := make([]*vector.Vector, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		v, err := k.Eval(b)
		if err != nil {
			return err
		}
		keyCols[i] = v
	}
	hs := hashKeys(keyCols, b)
	if j.probeBufs == nil {
		j.probeBufs = make([][][]types.Datum, joinSpillParts)
	}
	var sz int64
	for i := 0; i < b.N; i++ {
		row := b.Row(i)
		p := int(hs[i] % joinSpillParts)
		j.probeBufs[p] = append(j.probeBufs[p], row)
		sz += rowBytes(row)
	}
	if j.res.Grow(sz) {
		return nil
	}
	j.res.ForceGrow(sz)
	if !j.res.ShouldSpill() {
		return nil // too little buffered for a flush worth its files
	}
	return j.flushProbeBufs()
}

// flushProbeBufs writes every buffered probe partition to scratch and
// frees the buffers.
func (j *HashJoinOp) flushProbeBufs() error {
	if j.probeBufs == nil {
		return nil
	}
	if j.probeFiles == nil {
		j.probeFiles = make([][]string, joinSpillParts)
	}
	for p, rows := range j.probeBufs {
		if len(rows) == 0 {
			continue
		}
		path, err := writeRunFile(j.Ctx, fmt.Sprintf("join_probe_p%02d", p), rows)
		if err != nil {
			return err
		}
		j.probeFiles[p] = append(j.probeFiles[p], path)
		j.probeBufs[p] = nil
	}
	j.res.Release()
	return nil
}

// loadGracePart rebuilds partition gracePart's hash table from its build
// spill files (single-level Grace: one partition is assumed to fit once
// loaded) and queues its probe files for replay.
func (j *HashJoinOp) loadGracePart() error {
	fs, _ := j.Ctx.spillTarget()
	p := j.gracePart
	part := buildPartition{index: make(map[uint64][]int)}
	nk := len(j.RightKeys)
	var bytes int64
	for _, path := range j.graceBuild[p] {
		r, err := spill.OpenReader(fs, path)
		if err != nil {
			return err
		}
		for {
			if err := j.Ctx.CheckCanceled(); err != nil {
				return err
			}
			rows, err := r.Next()
			if err != nil {
				return err
			}
			if rows == nil {
				break
			}
			for _, row := range rows {
				if len(row) < 1+nk {
					return fmt.Errorf("exec: truncated spilled join build row")
				}
				h := uint64(row[0].I)
				idx := len(part.rows)
				part.rows = append(part.rows, row[1+nk:])
				part.keys = append(part.keys, row[1:1+nk])
				part.index[h] = append(part.index[h], idx)
				bytes += rowBytes(row)
			}
		}
	}
	if j.Kind == plan.Right || j.Kind == plan.Full {
		part.matched = make([]bool, len(part.rows))
	}
	j.res.ForceGrow(bytes)
	j.parts = []buildPartition{part}
	j.partLoaded = true
	var probeFiles []string
	if j.probeFiles != nil {
		probeFiles = j.probeFiles[p]
	}
	// The partition's probe rows stream back through the shared run-file
	// puller (merge.go), one block resident at a time.
	j.probePull = runFilePuller(fs, probeFiles, j.Left.Types())
	return nil
}

// freeGracePart drops the loaded partition and removes its spill files.
// Shared-build clones keep the shared build files — other clones may still
// need them; sharedBuild removes them once at Close.
func (j *HashJoinOp) freeGracePart() {
	p := j.gracePart
	if fs, ok := j.Ctx.spillTarget(); ok {
		if j.Shared == nil {
			for _, path := range j.graceBuild[p] {
				fs.Remove(path, false)
			}
			j.graceBuild[p] = nil
		}
		if j.probeFiles != nil {
			for _, path := range j.probeFiles[p] {
				fs.Remove(path, false)
			}
			j.probeFiles[p] = nil
		}
	}
	j.parts = nil
	j.partLoaded = false
	j.probePull = nil
	j.res.Release()
	j.gracePart++
}

// emitUnmatched appends null-extended rows for the partition's unmatched
// build rows (right/full outer).
func (j *HashJoinOp) emitUnmatched(p *buildPartition) {
	nullLeft := make([]types.Datum, j.leftW)
	lt := j.Left.Types()
	for i := range nullLeft {
		nullLeft[i] = types.NullOf(lt[i].Kind)
	}
	for i, m := range p.matched {
		if !m {
			j.pending.add(append(append([]types.Datum{}, nullLeft...), p.rows[i]...))
		}
	}
}

func (j *HashJoinOp) probeBatch(b *vector.Batch) error {
	keyCols := make([]*vector.Vector, len(j.LeftKeys))
	for i, k := range j.LeftKeys {
		v, err := k.Eval(b)
		if err != nil {
			return err
		}
		keyCols[i] = v
	}
	nested := len(j.LeftKeys) == 0
	var hs []uint64
	if !nested {
		hs = hashKeys(keyCols, b)
	}
	for i := 0; i < b.N; i++ {
		r := b.RowIdx(i)
		leftRow := b.Row(i)
		matches := 0
		if nested {
			for pi := range j.parts {
				p := &j.parts[pi]
				m, err := j.probeCandidates(p, allRows(len(p.rows)), keyCols, r, leftRow, matches)
				if err != nil {
					return err
				}
				matches = m
				if j.Kind == plan.Semi && matches > 0 {
					break
				}
			}
		} else {
			nullKey := false
			for _, kc := range keyCols {
				if kc.IsNull(r) {
					nullKey = true
					break
				}
			}
			if !nullKey && len(j.parts) > 0 {
				h := hs[i]
				p := &j.parts[h%uint64(len(j.parts))]
				m, err := j.probeCandidates(p, p.index[h], keyCols, r, leftRow, matches)
				if err != nil {
					return err
				}
				matches = m
			}
		}
		switch j.Kind {
		case plan.Semi:
			if matches > 0 {
				j.pending.add(leftRow)
			}
		case plan.Anti:
			if matches == 0 {
				j.pending.add(leftRow)
			}
		case plan.Left, plan.Full, plan.Single:
			if matches == 0 {
				row := append([]types.Datum{}, leftRow...)
				for _, t := range j.rtTypes {
					row = append(row, types.NullOf(t.Kind))
				}
				j.pending.add(row)
			}
		}
	}
	return nil
}

// probeCandidates tests the candidate build rows of one partition against
// a probe row, emitting matching output rows; it returns the running match
// count for the probe row.
func (j *HashJoinOp) probeCandidates(p *buildPartition, candidates []int, keyCols []*vector.Vector, r int, leftRow []types.Datum, matches int) (int, error) {
	nested := len(j.LeftKeys) == 0
	for _, ci := range candidates {
		right := p.rows[ci]
		if !nested && !keysEqual(keyCols, r, p.keys[ci]) {
			continue
		}
		if j.Residual != nil {
			ok, err := j.evalResidual(leftRow, right)
			if err != nil {
				return matches, err
			}
			if !ok {
				continue
			}
		}
		matches++
		if p.matched != nil {
			p.matched[ci] = true
		}
		switch j.Kind {
		case plan.Semi:
			// emit left once in probeBatch
		case plan.Anti:
			// no emit
		case plan.Single:
			if matches > 1 {
				return matches, fmt.Errorf("exec: scalar subquery returned more than one row")
			}
			j.pending.add(append(append([]types.Datum{}, leftRow...), right...))
		default:
			j.pending.add(append(append([]types.Datum{}, leftRow...), right...))
		}
		if j.Kind == plan.Semi {
			break
		}
	}
	return matches, nil
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func keysEqual(probeCols []*vector.Vector, r int, buildKeys []types.Datum) bool {
	for k, kc := range probeCols {
		pd := kc.Get(r)
		bd := buildKeys[k]
		if pd.Null || bd.Null || pd.Compare(bd) != 0 {
			return false
		}
	}
	return true
}

// evalOnRow evaluates a compiled expression against a single materialized
// row by staging it into a one-row batch.
func evalOnRow(e *CompiledExpr, row []types.Datum) (types.Datum, error) {
	ts := make([]types.T, len(row))
	for i, d := range row {
		ts[i] = types.T{Kind: d.K}
		if d.K == types.Decimal {
			ts[i] = types.TDecimal(18, d.DecimalScale())
		}
	}
	b := vector.NewBatch(ts, 1)
	for c, d := range row {
		b.Cols[c].Set(0, d)
	}
	b.N = 1
	v, err := e.Eval(b)
	if err != nil {
		return types.Datum{}, err
	}
	return v.Get(0), nil
}

func (j *HashJoinOp) evalResidual(left, right []types.Datum) (bool, error) {
	combined := append(append([]types.Datum{}, left...), right...)
	d, err := evalOnRow(j.Residual, combined)
	if err != nil {
		return false, err
	}
	return !d.Null && d.I != 0, nil
}

// Close implements Operator. Any Grace spill files still on disk — the
// probe never ran, or ended early on error or a satisfied LIMIT — are
// removed; shared build files are removed exactly once, after the
// exchange has finished every clone.
func (j *HashJoinOp) Close() error {
	if fs, ok := j.Ctx.spillTarget(); ok && j.graceBuild != nil {
		removeBuild := func() {
			for _, files := range j.graceBuild {
				for _, path := range files {
					fs.Remove(path, false)
				}
			}
		}
		if j.Shared != nil {
			j.Shared.cleanOnce.Do(removeBuild)
		} else {
			removeBuild()
		}
		for _, files := range j.probeFiles {
			for _, path := range files {
				fs.Remove(path, false)
			}
		}
	}
	j.parts = nil
	j.graceBuild, j.probeBufs, j.probeFiles = nil, nil, nil
	j.res.Release()
	err := j.Left.Close()
	if j.Right != nil && j.Shared == nil {
		if cerr := j.Right.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
