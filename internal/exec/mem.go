// Per-query memory governance (paper §4.4, §5.2): LLAP daemons run many
// concurrent fragments in one long-lived process, which is only viable when
// each query's memory is bounded and blocking operators degrade gracefully
// instead of OOM-ing the shared daemon. A Governor is the query's atomic
// byte accountant: operators take Reservations, grow them as they
// materialize state, and a denied grow is the spill signal — the operator
// moves state to the DFS scratch directory, shrinks its reservation, and
// carries on beyond memory. Peak and spilled bytes feed workload-manager
// triggers (wm.QueryMetrics).
package exec

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/spill"
	"repro/internal/types"
	"repro/internal/vector"
)

// Governor is the per-query memory accountant shared by every operator of
// one query, across all of its worker goroutines.
type Governor struct {
	// budget is the session's hive.query.max.memory in bytes; 0 or
	// negative means unlimited (grows never deny, accounting still runs so
	// peak is observable).
	budget  int64
	used    atomic.Int64
	peak    atomic.Int64
	spilled atomic.Int64
}

// NewGovernor returns a governor enforcing budget bytes (<= 0: unlimited).
func NewGovernor(budget int64) *Governor {
	return &Governor{budget: budget}
}

// Budget returns the configured budget (0 = unlimited).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// UsedBytes returns the bytes currently reserved.
func (g *Governor) UsedBytes() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// PeakBytes returns the high-water mark of reserved bytes.
func (g *Governor) PeakBytes() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// SpilledBytes returns the total bytes written to spill files.
func (g *Governor) SpilledBytes() int64 {
	if g == nil {
		return 0
	}
	return g.spilled.Load()
}

// NoteSpill records bytes written to a spill file.
func (g *Governor) NoteSpill(n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.spilled.Add(n)
}

func (g *Governor) bumpPeak(now int64) {
	for {
		p := g.peak.Load()
		if now <= p || g.peak.CompareAndSwap(p, now) {
			return
		}
	}
}

// Reserve opens a named per-operator reservation. Safe on a nil governor:
// the returned nil reservation grants every grow (unlimited).
func (g *Governor) Reserve(op string) *Reservation {
	if g == nil {
		return nil
	}
	return &Reservation{g: g, op: op}
}

// Reservation tracks one operator's share of the query budget. A nil
// reservation is valid and unlimited, so operators built without a Context
// (tests, embedded trees) need no special casing.
type Reservation struct {
	g    *Governor
	op   string
	held atomic.Int64
}

// Grow asks for n more bytes; false means the budget is exhausted and the
// operator should spill. The bytes are NOT held after a denial, but the
// peak still observes them: the state was resident at the moment of the
// request, and only the spill that follows evicts it.
func (r *Reservation) Grow(n int64) bool {
	if r == nil || n <= 0 {
		return true
	}
	now := r.g.used.Add(n)
	r.g.bumpPeak(now)
	if b := r.g.budget; b > 0 && now > b {
		r.g.used.Add(-n)
		return false
	}
	r.held.Add(n)
	return true
}

// ForceGrow takes n bytes unconditionally — the minimum working set an
// operator needs even on the spill path (e.g. the single row in flight, or
// one reloaded partition).
func (r *Reservation) ForceGrow(n int64) {
	if r == nil || n <= 0 {
		return
	}
	now := r.g.used.Add(n)
	r.held.Add(n)
	r.g.bumpPeak(now)
}

// Shrink returns n bytes (clamped to the held amount). The clamp is a CAS
// loop: reservations are shared across a query's worker goroutines, and a
// check-then-subtract could drive held negative under concurrent shrinks.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	for {
		h := r.held.Load()
		take := n
		if take > h {
			take = h
		}
		if take <= 0 {
			return
		}
		if r.held.CompareAndSwap(h, h-take) {
			r.g.used.Add(-take)
			return
		}
	}
}

// Held returns the bytes currently held by this reservation.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held.Load()
}

// ShouldSpill reports whether spilling this reservation's state is worth
// it after a denied grow: it must hold enough that flushing frees a useful
// fraction of the budget. A denial with almost nothing resident — another
// operator is pinning the budget — overshoots via ForceGrow instead;
// spilling a near-empty table would write one tiny file per row and turn
// the drain into a seek storm.
func (r *Reservation) ShouldSpill() bool {
	if r == nil {
		return false
	}
	// A quarter of the budget per flush keeps spill files big enough that
	// the drain's per-read seek cost stays amortized; the overshoot this
	// tolerates is bounded by one floor per concurrently-denied operator.
	floor := r.g.budget / 4
	if floor < 256 {
		floor = 256
	}
	return r.held.Load() >= floor
}

// Release returns everything held. Idempotent; Close paths call it
// unconditionally.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	if h := r.held.Swap(0); h > 0 {
		r.g.used.Add(-h)
	}
}

// datumBytes estimates the in-memory footprint of one datum: the tagged
// union struct plus string payload.
func datumBytes(d types.Datum) int64 {
	n := int64(48)
	n += int64(len(d.S))
	for _, e := range d.List {
		n += datumBytes(e)
	}
	return n
}

// rowBytes estimates a materialized row: slice header plus datums.
func rowBytes(row []types.Datum) int64 {
	n := int64(24)
	for _, d := range row {
		n += datumBytes(d)
	}
	return n
}

// writeRunFile spills rows as one block-framed run file under a fresh
// prefix-named scratch path, notes the bytes with the governor, and
// returns the file's path — the one write path every spilling operator
// (sort runs, agg partitions, join build/probe partitions) shares.
func writeRunFile(ctx *Context, prefix string, rows [][]types.Datum) (string, error) {
	fs, _ := ctx.spillTarget()
	w := spill.NewWriter(fs, ctx.SpillPath(prefix))
	for start := 0; start < len(rows); start += vector.BatchSize {
		end := start + vector.BatchSize
		if end > len(rows) {
			end = len(rows)
		}
		w.Append(rows[start:end])
	}
	n, err := w.Close()
	if err != nil {
		return "", err
	}
	ctx.Governor().NoteSpill(n)
	return w.Path(), nil
}

// rowStore is the governed arrival-order row store shared by operators
// that materialize and replay their input verbatim (window input chunks,
// spool replay buffers): rows accumulate under a reservation and flush to
// run files when the governor denies growth. The stored order is always
// arrival order — runs in flush order, then the resident tail.
type rowStore struct {
	ctx     *Context
	res     *Reservation
	prefix  string
	rows    [][]types.Datum
	runs    []string
	spilled bool
}

// newRowStore opens a store accounting under op's reservation, spilling
// prefix-named run files.
func newRowStore(ctx *Context, op, prefix string) *rowStore {
	return &rowStore{ctx: ctx, res: ctx.Governor().Reserve(op), prefix: prefix}
}

// appendBatch materializes and accounts one input batch, flushing the
// resident rows as an arrival-order run file when the reservation is
// denied and holds enough to be worth a file.
func (st *rowStore) appendBatch(b *vector.Batch) error {
	var sz int64
	for i := 0; i < b.N; i++ {
		row := b.Row(i)
		st.rows = append(st.rows, row)
		sz += rowBytes(row)
	}
	if st.res.Grow(sz) {
		return nil
	}
	st.res.ForceGrow(sz)
	if _, ok := st.ctx.spillTarget(); !ok || !st.res.ShouldSpill() {
		return nil
	}
	path, err := writeRunFile(st.ctx, st.prefix, st.rows)
	if err != nil {
		return err
	}
	st.runs = append(st.runs, path)
	st.rows = nil
	st.res.Release()
	st.spilled = true
	return nil
}

// replay returns a fresh pull over the stored content in arrival order.
// Safe for concurrent replays once writing has stopped: each pull owns
// its readers and the store is read-only.
func (st *rowStore) replay(ts []types.T) func() (*vector.Batch, error) {
	var filePull func() (*vector.Batch, error)
	if len(st.runs) > 0 {
		fs, _ := st.ctx.spillTarget()
		filePull = runFilePuller(fs, st.runs, ts)
	}
	mem := 0
	return func() (*vector.Batch, error) {
		if filePull != nil {
			b, err := filePull()
			if err != nil || b != nil {
				return b, err
			}
			filePull = nil
		}
		b := emitRows(st.rows, mem, ts)
		if b == nil {
			return nil, nil
		}
		mem += b.N
		return b, nil
	}
}

// close removes the run files and returns the reservation.
func (st *rowStore) close() {
	if st == nil {
		return
	}
	if fs, ok := st.ctx.spillTarget(); ok {
		for _, path := range st.runs {
			fs.Remove(path, false)
		}
	}
	st.rows, st.runs = nil, nil
	st.res.Release()
}

// spillTarget reports where this query's operators may spill. ok is false
// when the context has no scratch filesystem — then denial-driven spilling
// is impossible and operators fall back to ForceGrow.
func (c *Context) spillTarget() (fs *dfs.FS, ok bool) {
	if c == nil || c.FS == nil || c.ScratchDir == "" {
		return nil, false
	}
	return c.FS, true
}

// SpillPath returns a fresh unique scratch-file path for an operator spill.
// Safe for concurrent use by parallel workers.
func (c *Context) SpillPath(prefix string) string {
	return fmt.Sprintf("%s/%s_%06d", c.ScratchDir, prefix, c.spillSeq.Add(1))
}

// Governor returns the query's memory governor (nil when ungoverned).
func (c *Context) Governor() *Governor {
	if c == nil {
		return nil
	}
	return c.Mem
}
