// Window functions, memory-governed and beyond-memory capable.
//
// WindowOp groups its functions by (PARTITION BY, ORDER BY) spec and runs
// one partition/order pass per group instead of one per function. Input
// rows are accounted against the query's memory governor as they
// materialize; when a reservation is denied the accumulated rows flush to
// arrival-order chunk files on the DFS scratch directory and the compute
// pass switches to an external plan built from the same SortOp machinery
// the rest of the engine spills through:
//
//	input chunks ── sort by (partition cols, order keys, seq) ──┐
//	                one partition resident at a time: eval fns  │ per group
//	                result rows (seq, values…) sort by seq ─────┘
//	input chunks ── zip with each group's seq-ordered results ── output
//
// Both paths order partitions with the same comparator and break ties by
// arrival, so spilled output is byte-identical to the in-memory path —
// which emits rows in arrival order, the operator's contract either way.
//
// Aggregate functions with an ORDER BY run under the SQL default frame
// (RANGE UNBOUNDED PRECEDING TO CURRENT ROW): peer rows — equal order
// keys — share one frame, so each peer group accumulates as a unit and
// every row in it receives the same result. Without ORDER BY the frame is
// the whole partition.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// windowGroup is one shared partition/order pass: every function with the
// same (PARTITION BY, ORDER BY) spec computes in it.
type windowGroup struct {
	partitionBy []int
	orderBy     []plan.SortKey
	fnIdx       []int           // indices into WindowOp.Fns, in plan order
	args        []*CompiledExpr // compiled argument per fnIdx entry (nil for arg-less)
}

// groupKey canonicalizes a function's partition/order spec.
func windowGroupKey(fn plan.WindowFn) string {
	var b strings.Builder
	for _, c := range fn.PartitionBy {
		fmt.Fprintf(&b, "p%d,", c)
	}
	b.WriteByte('|')
	for _, k := range fn.OrderBy {
		b.WriteString(k.Digest())
		b.WriteByte(',')
	}
	return b.String()
}

// buildWindowGroups compiles the function arguments and buckets the
// functions by spec, preserving plan order within each group.
func buildWindowGroups(fns []plan.WindowFn, inTypes []types.T) ([]windowGroup, error) {
	var groups []windowGroup
	byKey := map[string]int{}
	for fi, fn := range fns {
		var arg *CompiledExpr
		if fn.Arg != nil {
			e, err := Compile(fn.Arg, inTypes)
			if err != nil {
				return nil, err
			}
			arg = e
		}
		k := windowGroupKey(fn)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, windowGroup{partitionBy: fn.PartitionBy, orderBy: fn.OrderBy})
		}
		groups[gi].fnIdx = append(groups[gi].fnIdx, fi)
		groups[gi].args = append(groups[gi].args, arg)
	}
	return groups, nil
}

// sortKeys returns the group's full ordering: partition columns first (any
// consistent direction groups equal keys contiguously — compareKey == 0
// exactly when datumsEqual holds), then the window order keys. seqCol >= 0
// appends the arrival-sequence column as the final tie-break, which the
// external path needs because a file sort has no stable-arrival guarantee
// of its own.
func (g *windowGroup) sortKeys(seqCol int) []plan.SortKey {
	keys := make([]plan.SortKey, 0, len(g.partitionBy)+len(g.orderBy)+1)
	for _, c := range g.partitionBy {
		keys = append(keys, plan.SortKey{Col: c})
	}
	keys = append(keys, g.orderBy...)
	if seqCol >= 0 {
		keys = append(keys, plan.SortKey{Col: seqCol})
	}
	return keys
}

// samePartition reports whether two rows fall in the same partition of g.
func (g *windowGroup) samePartition(a, b []types.Datum) bool {
	for _, c := range g.partitionBy {
		x, y := a[c], b[c]
		if x.Null != y.Null {
			return false
		}
		if !x.Null && x.Compare(y) != 0 {
			return false
		}
	}
	return true
}

// evalGroupPartition computes every function of the group over one ordered
// partition, returning results[i][k] for group-local function i at
// partition position k.
//
// Ranking functions read the order keys directly. Aggregates with an ORDER
// BY accumulate peer group by peer group — rows with equal order keys form
// one frame and share one result (the RANGE-frame default); aggregates
// without an ORDER BY cover the whole partition.
func evalGroupPartition(g *windowGroup, fns []plan.WindowFn, part [][]types.Datum) ([][]types.Datum, error) {
	out := make([][]types.Datum, len(g.fnIdx))
	for i := range out {
		out[i] = make([]types.Datum, len(part))
	}
	for i, fi := range g.fnIdx {
		fn, arg, res := fns[fi], g.args[i], out[i]
		switch fn.Fn {
		case "row_number":
			for k := range part {
				res[k] = types.NewBigint(int64(k + 1))
			}
		case "rank", "dense_rank":
			rank, dense := int64(0), int64(0)
			for k := range part {
				if k == 0 || rowLess(part[k-1], part[k], fn.OrderBy) {
					rank = int64(k + 1)
					dense++
				}
				if fn.Fn == "rank" {
					res[k] = types.NewBigint(rank)
				} else {
					res[k] = types.NewBigint(dense)
				}
			}
		case "count", "sum", "avg", "min", "max":
			var st aggState
			ag := CompiledAgg{Fn: fn.Fn, T: fn.T, Arg: arg}
			update := func(k int) error {
				d := types.NewBigint(1)
				if arg != nil {
					var err error
					d, err = evalOnRow(arg, part[k])
					if err != nil {
						return err
					}
				}
				st.update(ag, d)
				return nil
			}
			if len(fn.OrderBy) == 0 {
				for k := range part {
					if err := update(k); err != nil {
						return nil, err
					}
				}
				v := st.result(ag)
				for k := range part {
					res[k] = v
				}
				continue
			}
			// Running aggregate: the partition is sorted by the order keys,
			// so peers are consecutive and a boundary is exactly a strict
			// key increase.
			for lo := 0; lo < len(part); {
				hi := lo + 1
				for hi < len(part) && !rowLess(part[hi-1], part[hi], fn.OrderBy) {
					hi++
				}
				for k := lo; k < hi; k++ {
					if err := update(k); err != nil {
						return nil, err
					}
				}
				v := st.result(ag)
				for k := lo; k < hi; k++ {
					res[k] = v
				}
				lo = hi
			}
		default:
			return nil, fmt.Errorf("exec: unsupported window function %s", fn.Fn)
		}
	}
	return out, nil
}

// rowLess orders two rows under sort keys (NULLS placement per key).
func rowLess(a, b []types.Datum, keys []plan.SortKey) bool {
	for _, k := range keys {
		if c := compareKey(k, a[k.Col], b[k.Col]); c != 0 {
			return c < 0
		}
	}
	return false
}

// mergeSortIdx stably sorts positions with the provided comparator.
func mergeSortIdx(idx []int, less func(a, b int) bool) {
	if len(idx) < 2 {
		return
	}
	tmp := make([]int, len(idx))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if less(idx[j], idx[i]) {
				tmp[k] = idx[j]
				j++
			} else {
				tmp[k] = idx[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = idx[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = idx[j]
			j++
			k++
		}
		copy(idx[lo:hi], tmp[lo:hi])
	}
	ms(0, len(idx))
}

// WindowOp computes window functions over a materialized input, appending
// one column per function; rows emit in arrival order. The materialized
// state is governed: input beyond the budget flushes to arrival-order
// chunk files and the compute pass runs externally (see the package
// comment for the plan), byte-identical to the in-memory path.
type WindowOp struct {
	Input Operator
	Fns   []plan.WindowFn
	Out   []types.T
	// Ctx supplies the memory governor and spill target; nil means
	// ungoverned in-memory computation (operator trees built outside a
	// query).
	Ctx *Context

	groups []windowGroup
	store  *rowStore // governed arrival-order input store (mem.go)
	done   bool

	// Resident emission state.
	results [][]types.Datum // per fn, parallel to store.rows
	emitted int

	// External emission state: one replay feed for the input plus one
	// seq-sorted result feed per group, zipped row by row.
	pipes    []Operator
	inFeed   *rowFeed
	resFeeds []*rowFeed
}

// Types implements Operator.
func (w *WindowOp) Types() []types.T { return w.Out }

// Open implements Operator.
func (w *WindowOp) Open() error {
	g, err := buildWindowGroups(w.Fns, w.Input.Types())
	if err != nil {
		return err
	}
	w.groups = g
	w.store = newRowStore(w.Ctx, "window", "window_in")
	w.done = false
	w.results, w.emitted = nil, 0
	w.pipes, w.inFeed, w.resFeeds = nil, nil, nil
	return w.Input.Open()
}

// consume drains the input into the governed row store. A denied
// reservation flushes the resident rows as one arrival-order chunk file —
// not sorted: the chunks are replayed once per group sort and once for
// final emission.
func (w *WindowOp) consume() error {
	for {
		if err := w.Ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := w.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := w.store.appendBatch(b); err != nil {
			return err
		}
	}
}

// computeResident is the in-memory pass: per group, one stable index sort
// by (partition cols, order keys) — arrival order breaks ties — then one
// evaluation per contiguous partition, scattered back by row ordinal.
func (w *WindowOp) computeResident() error {
	rows := w.store.rows
	w.results = make([][]types.Datum, len(w.Fns))
	for i := range w.results {
		w.results[i] = make([]types.Datum, len(rows))
	}
	// The result columns are resident state too: account them (observable
	// peak) without a denial path — the spill decision already happened
	// during consume.
	w.store.res.ForceGrow(int64(len(rows)) * int64(len(w.Fns)) * 48)
	var delivered []plan.SortKey
	if w.Ctx.propsOn() {
		delivered = DeliveredProps(w.Input).Ordering
	}
	wp := planWindowGroups(w.groups, delivered, w.Ctx.propsOn())
	identity := func() []int {
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	// Presorted groups: the input already delivers (partition, order), and
	// the stable sort's arrival tie-break would reproduce the delivered
	// order exactly — so the identity permutation IS the sorted one.
	for gi := range w.groups {
		if wp.presorted[gi] {
			if err := w.evalPartitions(&w.groups[gi], identity()); err != nil {
				return err
			}
		}
	}
	for _, gi := range wp.solo {
		g := &w.groups[gi]
		idx := identity()
		// No keys (e.g. count(*) OVER ()) means one partition in arrival
		// order — exactly what idx already is.
		if keys := g.sortKeys(-1); len(keys) > 0 {
			mergeSortIdx(idx, func(a, b int) bool {
				return rowLess(rows[a], rows[b], keys)
			})
		}
		if err := w.evalPartitions(g, idx); err != nil {
			return err
		}
	}
	for _, bucket := range wp.shared {
		if err := w.evalSharedPartitionPass(bucket); err != nil {
			return err
		}
	}
	return nil
}

// evalPartition evaluates group g over one partition, given as row
// ordinals in partition order, scattering results by ordinal.
func (w *WindowOp) evalPartition(g *windowGroup, sub []int) error {
	rows := w.store.rows
	part := make([][]types.Datum, len(sub))
	for k := range part {
		part[k] = rows[sub[k]]
	}
	res, err := evalGroupPartition(g, w.Fns, part)
	if err != nil {
		return err
	}
	for i, fi := range g.fnIdx {
		for k := range sub {
			w.results[fi][sub[k]] = res[i][k]
		}
	}
	return nil
}

// evalPartitions walks the contiguous partitions of an index already
// grouped by g's partition columns and evaluates each.
func (w *WindowOp) evalPartitions(g *windowGroup, idx []int) error {
	rows := w.store.rows
	for lo := 0; lo < len(idx); {
		hi := lo + 1
		for hi < len(idx) && g.samePartition(rows[idx[lo]], rows[idx[hi]]) {
			hi++
		}
		if err := w.evalPartition(g, idx[lo:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// evalSharedPartitionPass runs one partition pass for a bucket of groups
// that share a PARTITION BY column set: a single stable sort by the
// partition columns, then per contiguous partition a per-group stable
// sub-sort by that group's order keys.
//
// Byte-identity: the partition sort leaves rows within a partition in
// arrival order, so the orderBy sub-sort yields rows ordered by orderBy
// with arrival tie-break — exactly the permutation the group's solo
// (partition, order) sort would produce. Results scatter by row ordinal,
// so partition visit order never shows.
func (w *WindowOp) evalSharedPartitionPass(bucket []int) error {
	rows := w.store.rows
	rep := &w.groups[bucket[0]]
	pcols := partSetCols(rep.partitionBy)
	pkeys := make([]plan.SortKey, len(pcols))
	for i, c := range pcols {
		pkeys[i] = plan.SortKey{Col: c}
	}
	pidx := make([]int, len(rows))
	for i := range pidx {
		pidx[i] = i
	}
	mergeSortIdx(pidx, func(a, b int) bool {
		return rowLess(rows[a], rows[b], pkeys)
	})
	for lo := 0; lo < len(pidx); {
		hi := lo + 1
		for hi < len(pidx) && rep.samePartition(rows[pidx[lo]], rows[pidx[hi]]) {
			hi++
		}
		for _, gi := range bucket {
			g := &w.groups[gi]
			sub := pidx[lo:hi]
			if len(g.orderBy) > 0 {
				sub = append([]int(nil), sub...)
				mergeSortIdx(sub, func(a, b int) bool {
					return rowLess(rows[a], rows[b], g.orderBy)
				})
			}
			if err := w.evalPartition(g, sub); err != nil {
				return err
			}
		}
		lo = hi
	}
	return nil
}

// windowPlan classifies a WindowOp's spec groups by how their
// (partition, order) requirement will be met: presorted groups find it
// already delivered by the input, shared buckets (≥2 groups on one
// PARTITION BY column set) split one partition pass, solo groups sort for
// themselves — the enforcer-everywhere default.
type windowPlan struct {
	presorted []bool
	shared    [][]int
	solo      []int
}

func planWindowGroups(groups []windowGroup, delivered []plan.SortKey, propsOn bool) windowPlan {
	wp := windowPlan{presorted: make([]bool, len(groups))}
	if !propsOn {
		for gi := range groups {
			wp.solo = append(wp.solo, gi)
		}
		return wp
	}
	byPart := map[string][]int{}
	for gi := range groups {
		g := &groups[gi]
		if windowSortSatisfied(delivered, g) {
			wp.presorted[gi] = true
			continue
		}
		if len(g.partitionBy) == 0 {
			wp.solo = append(wp.solo, gi)
			continue
		}
		byPart[partSetKey(g.partitionBy)] = append(byPart[partSetKey(g.partitionBy)], gi)
	}
	// Emit buckets in first-seen group order for deterministic plans.
	done := map[string]bool{}
	for gi := range groups {
		g := &groups[gi]
		if wp.presorted[gi] || len(g.partitionBy) == 0 {
			continue
		}
		k := partSetKey(g.partitionBy)
		if done[k] {
			continue
		}
		done[k] = true
		if b := byPart[k]; len(b) >= 2 {
			wp.shared = append(wp.shared, b)
		} else {
			wp.solo = append(wp.solo, b...)
		}
	}
	return wp
}

// partSetCols returns the sorted, deduplicated partition column set.
func partSetCols(cols []int) []int {
	s := append([]int(nil), cols...)
	sort.Ints(s)
	out := s[:0]
	for i, c := range s {
		if i == 0 || c != s[i-1] {
			out = append(out, c)
		}
	}
	return out
}

func partSetKey(cols []int) string {
	var b strings.Builder
	for _, c := range partSetCols(cols) {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}

// computeExternal assembles the spilled plan: per group a
// SortOp(replay+seq) → windowEvalOp → SortOp(by seq) pipeline, then
// lockstep feeds for emission. Each group primes sequentially so only one
// group's sort drain is in flight at a time; the SortOps account and spill
// against the shared governor, and their Close (via w.pipes) removes every
// run they wrote.
func (w *WindowOp) computeExternal() error {
	inTypes := w.Input.Types()
	seqCol := len(inTypes)
	w.resFeeds = make([]*rowFeed, len(w.groups))
	for gi := range w.groups {
		g := &w.groups[gi]
		srt := &SortOp{Input: w.newReplay(true), Keys: g.sortKeys(seqCol), Ctx: w.Ctx}
		ev := &windowEvalOp{Input: srt, g: g, fns: w.Fns, seqCol: seqCol, ctx: w.Ctx}
		res := &SortOp{Input: ev, Keys: []plan.SortKey{{Col: 0}}, Ctx: w.Ctx}
		if err := res.Open(); err != nil {
			return err
		}
		w.pipes = append(w.pipes, res)
		w.resFeeds[gi] = &rowFeed{op: res, ctx: w.Ctx}
		// Prime: the first pull drains the whole chain (SortOp consumes to
		// EOF before emitting), so the group's input copy lives exactly as
		// long as its pass — closing the upstream now frees the group
		// sort's rows and runs before the next group starts. res keeps
		// only the seq-sorted result rows. Close is idempotent, so the
		// later cascade from res.Close is harmless.
		if err := w.resFeeds[gi].prime(); err != nil {
			return err
		}
		ev.Close()
	}
	replay := w.newReplay(false)
	if err := replay.Open(); err != nil {
		return err
	}
	w.pipes = append(w.pipes, replay)
	w.inFeed = &rowFeed{op: replay, ctx: w.Ctx}
	return nil
}

func (w *WindowOp) compute() error {
	if err := w.consume(); err != nil {
		return err
	}
	if !w.store.spilled {
		return w.computeResident()
	}
	return w.computeExternal()
}

// Next implements Operator.
func (w *WindowOp) Next() (*vector.Batch, error) {
	if !w.done {
		if err := w.compute(); err != nil {
			return nil, err
		}
		w.done = true
	}
	if w.store.spilled {
		return w.nextExternal()
	}
	if w.emitted >= len(w.store.rows) {
		return nil, nil
	}
	n := len(w.store.rows) - w.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	out := vector.NewBatch(w.Out, n)
	inW := len(w.Input.Types())
	for i := 0; i < n; i++ {
		row := w.store.rows[w.emitted+i]
		for c, d := range row {
			out.Cols[c].Set(i, d)
		}
		for fi := range w.Fns {
			out.Cols[inW+fi].Set(i, w.results[fi][w.emitted+i])
		}
	}
	out.N = n
	w.emitted += n
	return out, nil
}

// nextExternal zips the input replay with every group's seq-sorted result
// stream: all run in arrival order over the same row count, so position i
// of each feed describes the same row.
func (w *WindowOp) nextExternal() (*vector.Batch, error) {
	inW := len(w.Input.Types())
	out := vector.NewBatch(w.Out, vector.BatchSize)
	n := 0
	for n < vector.BatchSize {
		row, err := w.inFeed.next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		for c, d := range row {
			out.Cols[c].Set(n, d)
		}
		for gi, feed := range w.resFeeds {
			rrow, err := feed.next()
			if err != nil {
				return nil, err
			}
			if rrow == nil {
				return nil, fmt.Errorf("exec: window result stream ended early")
			}
			for i, fi := range w.groups[gi].fnIdx {
				out.Cols[inW+fi].Set(n, rrow[1+i])
			}
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	out.N = n
	return out, nil
}

// Close implements Operator: tears down the external pipelines (their
// Close removes the sort runs they spilled), then the input store (chunk
// files removed, reservation returned).
func (w *WindowOp) Close() error {
	for _, p := range w.pipes {
		p.Close()
	}
	w.store.close()
	w.results, w.pipes = nil, nil
	w.inFeed, w.resFeeds = nil, nil
	return w.Input.Close()
}

// newReplay streams the operator's row store — spilled chunks then the
// resident tail — in arrival order; withSeq appends the arrival ordinal as
// a trailing bigint column for the external sort's tie-break and the
// result rows' join-back key.
func (w *WindowOp) newReplay(withSeq bool) *windowReplayOp {
	return &windowReplayOp{w: w, withSeq: withSeq}
}

type windowReplayOp struct {
	w       *WindowOp
	withSeq bool
	pull    func() (*vector.Batch, error)
	seq     int64
}

// Types implements Operator.
func (r *windowReplayOp) Types() []types.T {
	ts := r.w.Input.Types()
	if !r.withSeq {
		return ts
	}
	return append(append([]types.T{}, ts...), types.TBigint)
}

// Open implements Operator.
func (r *windowReplayOp) Open() error {
	r.seq = 0
	r.pull = r.w.store.replay(r.w.Input.Types())
	return nil
}

// Next implements Operator.
func (r *windowReplayOp) Next() (*vector.Batch, error) {
	b, err := r.pull()
	if err != nil || b == nil {
		return nil, err
	}
	if !r.withSeq {
		return b, nil
	}
	seqs := vector.New(types.TBigint, b.N)
	for i := 0; i < b.N; i++ {
		seqs.Set(i, types.NewBigint(r.seq))
		r.seq++
	}
	return &vector.Batch{Cols: append(append([]*vector.Vector{}, b.Cols...), seqs), N: b.N}, nil
}

// Close implements Operator. The replayed store belongs to the WindowOp;
// nothing to release here.
func (r *windowReplayOp) Close() error { return nil }

// windowEvalOp consumes a (partition, order, seq)-sorted stream and emits
// one result row (seq, fn values…) per input row, holding exactly one
// partition resident at a time. The partition working set is force-taken
// from the governor — the single-partition residency is the external
// plan's minimum, the same Grace assumption the agg and join drains make.
type windowEvalOp struct {
	Input  Operator
	g      *windowGroup
	fns    []plan.WindowFn
	seqCol int
	ctx    *Context

	res    *Reservation
	feed   *rowFeed
	carry  []types.Datum
	eof    bool
	out    [][]types.Datum
	outPos int
	ts     []types.T
}

// Types implements Operator.
func (e *windowEvalOp) Types() []types.T {
	if e.ts == nil {
		e.ts = make([]types.T, 0, 1+len(e.g.fnIdx))
		e.ts = append(e.ts, types.TBigint)
		for _, fi := range e.g.fnIdx {
			e.ts = append(e.ts, e.fns[fi].T)
		}
	}
	return e.ts
}

// Open implements Operator.
func (e *windowEvalOp) Open() error {
	e.res = e.ctx.Governor().Reserve("window")
	e.feed = &rowFeed{op: e.Input, ctx: e.ctx}
	e.carry, e.eof, e.out, e.outPos = nil, false, nil, 0
	return e.Input.Open()
}

// Next implements Operator.
func (e *windowEvalOp) Next() (*vector.Batch, error) {
	for {
		if e.out != nil {
			if b := emitRows(e.out, e.outPos, e.Types()); b != nil {
				e.outPos += b.N
				return b, nil
			}
			e.out, e.outPos = nil, 0
			e.res.Release()
		}
		if e.eof && e.carry == nil {
			return nil, nil
		}
		// Gather the next partition.
		var part [][]types.Datum
		if e.carry != nil {
			part = append(part, e.carry)
			e.carry = nil
		}
		for {
			row, err := e.feed.next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				e.eof = true
				break
			}
			e.res.ForceGrow(rowBytes(row))
			if len(part) > 0 && !e.g.samePartition(part[0], row) {
				e.carry = row
				break
			}
			part = append(part, row)
		}
		if len(part) == 0 {
			return nil, nil
		}
		res, err := evalGroupPartition(e.g, e.fns, part)
		if err != nil {
			return nil, err
		}
		e.out = make([][]types.Datum, len(part))
		for k := range part {
			row := make([]types.Datum, 1+len(e.g.fnIdx))
			row[0] = part[k][e.seqCol]
			for i := range e.g.fnIdx {
				row[1+i] = res[i][k]
			}
			e.out[k] = row
		}
	}
}

// Close implements Operator.
func (e *windowEvalOp) Close() error {
	e.out, e.carry, e.feed = nil, nil, nil
	e.res.Release()
	return e.Input.Close()
}

// rowFeed pulls rows one at a time across an operator's batch boundaries —
// the lockstep cursor the external window emission zips streams with.
type rowFeed struct {
	op     Operator
	ctx    *Context
	b      *vector.Batch
	i      int
	primed bool
}

// prime pulls the first batch, forcing any upstream materialization (sort
// consume, partition evaluation) to happen now.
func (f *rowFeed) prime() error {
	b, err := f.op.Next()
	if err != nil {
		return err
	}
	f.b, f.i, f.primed = b, 0, true
	return nil
}

// next returns the next row, or nil at end of stream.
func (f *rowFeed) next() ([]types.Datum, error) {
	for {
		if f.b != nil && f.i < f.b.N {
			row := f.b.Row(f.i)
			f.i++
			return row, nil
		}
		if f.primed && f.b == nil {
			return nil, nil
		}
		if err := f.ctx.CheckCanceled(); err != nil {
			return nil, err
		}
		b, err := f.op.Next()
		if err != nil {
			return nil, err
		}
		f.b, f.i, f.primed = b, 0, true
		if b == nil {
			return nil, nil
		}
	}
}
