package exec

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// WindowOp computes window functions: it materializes the input, hashes
// rows into partitions, orders each partition, and appends one column per
// function. Aggregate functions with an ORDER BY run as running aggregates
// (the SQL default frame); without ORDER BY they cover the whole partition.
type WindowOp struct {
	Input Operator
	Fns   []plan.WindowFn
	Out   []types.T

	rows    [][]types.Datum
	results [][]types.Datum // one slice per fn, parallel to rows
	done    bool
	emitted int
}

// Types implements Operator.
func (w *WindowOp) Types() []types.T { return w.Out }

// Open implements Operator.
func (w *WindowOp) Open() error {
	w.rows, w.results, w.done, w.emitted = nil, nil, false, 0
	return w.Input.Open()
}

func (w *WindowOp) compute() error {
	for {
		b, err := w.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			w.rows = append(w.rows, b.Row(i))
		}
	}
	w.results = make([][]types.Datum, len(w.Fns))
	for i := range w.results {
		w.results[i] = make([]types.Datum, len(w.rows))
	}
	inTypes := w.Input.Types()
	for fi, fn := range w.Fns {
		var arg *CompiledExpr
		if fn.Arg != nil {
			e, err := Compile(fn.Arg, inTypes)
			if err != nil {
				return err
			}
			arg = e
		}
		// Partition rows.
		parts := map[uint64][][]int{} // hash -> list of partitions (collision chains)
		keyOf := func(r []types.Datum) []types.Datum {
			out := make([]types.Datum, len(fn.PartitionBy))
			for i, c := range fn.PartitionBy {
				out[i] = r[c]
			}
			return out
		}
		var partList [][]int
		for ri, row := range w.rows {
			k := keyOf(row)
			h := uint64(0)
			for _, d := range k {
				h = h*1099511628211 ^ d.Hash()
			}
			found := false
			for ci, chain := range parts[h] {
				if datumsEqual(keyOf(w.rows[chain[0]]), k) {
					parts[h][ci] = append(chain, ri)
					found = true
					break
				}
			}
			if !found {
				parts[h] = append(parts[h], []int{ri})
				partList = append(partList, nil)
			}
		}
		partList = partList[:0]
		for _, chains := range parts {
			for _, chain := range chains {
				partList = append(partList, chain)
			}
		}
		for _, part := range partList {
			// Order within the partition.
			ordered := append([]int{}, part...)
			if len(fn.OrderBy) > 0 {
				mergeSortIdx(ordered, func(a, b int) bool {
					return rowLess(w.rows[a], w.rows[b], fn.OrderBy)
				})
			}
			if err := w.evalPartition(fi, fn, arg, ordered); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeSortIdx stably sorts positions with the provided comparator.
func mergeSortIdx(idx []int, less func(a, b int) bool) {
	if len(idx) < 2 {
		return
	}
	tmp := make([]int, len(idx))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if less(idx[j], idx[i]) {
				tmp[k] = idx[j]
				j++
			} else {
				tmp[k] = idx[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = idx[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = idx[j]
			j++
			k++
		}
		copy(idx[lo:hi], tmp[lo:hi])
	}
	ms(0, len(idx))
}

func rowLess(a, b []types.Datum, keys []plan.SortKey) bool {
	for _, k := range keys {
		x, y := a[k.Col], b[k.Col]
		if x.Null || y.Null {
			if x.Null && y.Null {
				continue
			}
			if x.Null {
				return k.NullsFirst
			}
			return !k.NullsFirst
		}
		c := x.Compare(y)
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// evalPartition fills function fi's results for one ordered partition.
func (w *WindowOp) evalPartition(fi int, fn plan.WindowFn, arg *CompiledExpr, ordered []int) error {
	res := w.results[fi]
	switch fn.Fn {
	case "row_number":
		for i, ri := range ordered {
			res[ri] = types.NewBigint(int64(i + 1))
		}
	case "rank", "dense_rank":
		rank, dense := int64(0), int64(0)
		for i, ri := range ordered {
			if i == 0 || rowLess(w.rows[ordered[i-1]], w.rows[ri], fn.OrderBy) {
				rank = int64(i + 1)
				dense++
			}
			if fn.Fn == "rank" {
				res[ri] = types.NewBigint(rank)
			} else {
				res[ri] = types.NewBigint(dense)
			}
		}
	case "count", "sum", "avg", "min", "max":
		running := len(fn.OrderBy) > 0
		var st aggState
		ag := CompiledAgg{Fn: fn.Fn, T: fn.T, Arg: arg}
		if !running {
			for _, ri := range ordered {
				d := types.NewBigint(1)
				if arg != nil {
					var err error
					d, err = evalOnRow(arg, w.rows[ri])
					if err != nil {
						return err
					}
				}
				st.update(ag, d)
			}
			v := st.result(ag)
			for _, ri := range ordered {
				res[ri] = v
			}
		} else {
			for i, ri := range ordered {
				d := types.NewBigint(1)
				if arg != nil {
					var err error
					d, err = evalOnRow(arg, w.rows[ri])
					if err != nil {
						return err
					}
				}
				st.update(ag, d)
				res[ri] = st.result(ag)
				// Peer rows (equal order keys) share the frame result:
				// handled approximately by running order, acceptable here.
				_ = i
			}
		}
	default:
		return fmt.Errorf("exec: unsupported window function %s", fn.Fn)
	}
	return nil
}

// Next implements Operator.
func (w *WindowOp) Next() (*vector.Batch, error) {
	if !w.done {
		if err := w.compute(); err != nil {
			return nil, err
		}
		w.done = true
	}
	if w.emitted >= len(w.rows) {
		return nil, nil
	}
	n := len(w.rows) - w.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	out := vector.NewBatch(w.Out, n)
	inW := len(w.Input.Types())
	for i := 0; i < n; i++ {
		row := w.rows[w.emitted+i]
		for c, d := range row {
			out.Cols[c].Set(i, d)
		}
		for fi := range w.Fns {
			out.Cols[inW+fi].Set(i, w.results[fi][w.emitted+i])
		}
	}
	out.N = n
	w.emitted += n
	return out, nil
}

// Close implements Operator.
func (w *WindowOp) Close() error {
	w.rows, w.results = nil, nil
	return w.Input.Close()
}
