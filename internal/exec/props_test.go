package exec

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/types"
)

func testValues(ts ...types.T) *ValuesOp {
	return &ValuesOp{Rows: [][]types.Datum{}, Ts: ts}
}

func bigints(n int) []types.T {
	ts := make([]types.T, n)
	for i := range ts {
		ts[i] = types.TBigint
	}
	return ts
}

func TestApplyPropertiesSortElision(t *testing.T) {
	inner := &SortOp{Input: testValues(bigints(3)...), Keys: []plan.SortKey{{Col: 0}, {Col: 1}}}
	outer := &SortOp{Input: inner, Keys: []plan.SortKey{{Col: 0}}}
	if got := ApplyProperties(outer); got != Operator(inner) {
		t.Fatalf("prefix-satisfied sort not elided: got %T", got)
	}

	inner = &SortOp{Input: testValues(bigints(3)...), Keys: []plan.SortKey{{Col: 0}}}
	outer = &SortOp{Input: inner, Keys: []plan.SortKey{{Col: 0, Desc: true}}}
	if got := ApplyProperties(outer); got != Operator(outer) {
		t.Fatalf("direction-mismatched sort wrongly elided: got %T", got)
	}
}

func TestApplyPropertiesTopNToLimit(t *testing.T) {
	inner := &SortOp{Input: testValues(bigints(2)...), Keys: []plan.SortKey{{Col: 1}}}
	top := &TopNOp{Input: inner, Keys: []plan.SortKey{{Col: 1}}, N: 5, Offset: 2}
	got := ApplyProperties(top)
	lim, ok := got.(*LimitOp)
	if !ok {
		t.Fatalf("TopN over ordered input should become Limit, got %T", got)
	}
	if lim.N != 5 || lim.Offset != 2 || lim.Input != Operator(inner) {
		t.Fatalf("Limit misconfigured: %+v", lim)
	}
}

func TestPushSortThroughWindow(t *testing.T) {
	in := testValues(bigints(3)...)
	w := &WindowOp{
		Input: in,
		Fns: []plan.WindowFn{{
			Fn: "rank", PartitionBy: []int{0},
			OrderBy: []plan.SortKey{{Col: 1}}, T: types.TBigint,
		}},
		Out: append(bigints(3), types.TBigint),
	}
	s := &SortOp{Input: w, Keys: []plan.SortKey{{Col: 0}, {Col: 1}}}
	got := ApplyProperties(s)
	if got != Operator(w) {
		t.Fatalf("sort should commute below window, got %T", got)
	}
	ws, ok := w.Input.(*SortOp)
	if !ok {
		t.Fatalf("window input should be the pushed sort, got %T", w.Input)
	}
	if len(ws.Keys) != 2 || ws.Keys[0].Col != 0 || ws.Keys[1].Col != 1 {
		t.Fatalf("pushed sort keys wrong: %+v", ws.Keys)
	}
	// The group must now classify as presorted.
	groups, err := buildWindowGroups(w.Fns, in.Types())
	if err != nil {
		t.Fatal(err)
	}
	wp := planWindowGroups(groups, DeliveredProps(w.Input).Ordering, true)
	if !wp.presorted[0] {
		t.Fatal("group not presorted after push-through")
	}
}

func TestPushSortThroughWindowRejected(t *testing.T) {
	// row_number is position-sensitive and the sort key is outside the
	// group's partition+order columns: reordering could change values.
	in := testValues(bigints(3)...)
	w := &WindowOp{
		Input: in,
		Fns: []plan.WindowFn{{
			Fn: "row_number", PartitionBy: []int{0},
			OrderBy: []plan.SortKey{{Col: 1}}, T: types.TBigint,
		}},
		Out: append(bigints(3), types.TBigint),
	}
	s := &SortOp{Input: w, Keys: []plan.SortKey{{Col: 2}}}
	if got := ApplyProperties(s); got != Operator(s) {
		t.Fatalf("unsafe sort wrongly pushed, got %T", got)
	}

	// Same shape but float SUM: accumulation order matters.
	wf := &WindowOp{
		Input: testValues(types.TBigint, types.TBigint, types.TDouble),
		Fns: []plan.WindowFn{{
			Fn: "sum", Arg: &plan.ColRef{Idx: 2, T: types.TDouble},
			PartitionBy: []int{0}, T: types.TDouble,
		}},
		Out: []types.T{types.TBigint, types.TBigint, types.TDouble, types.TDouble},
	}
	sf := &SortOp{Input: wf, Keys: []plan.SortKey{{Col: 2}}}
	if got := ApplyProperties(sf); got != Operator(sf) {
		t.Fatalf("float-sum sort wrongly pushed, got %T", got)
	}
}

func TestWindowSortSatisfied(t *testing.T) {
	g := &windowGroup{partitionBy: []int{0}, orderBy: []plan.SortKey{{Col: 1}}}
	cases := []struct {
		name      string
		delivered []plan.SortKey
		want      bool
	}{
		{"exact", []plan.SortKey{{Col: 0}, {Col: 1}}, true},
		{"desc partition still covers", []plan.SortKey{{Col: 0, Desc: true}, {Col: 1}}, true},
		{"extra trailing keys free", []plan.SortKey{{Col: 0}, {Col: 1}, {Col: 2}}, true},
		{"orderBy direction mismatch", []plan.SortKey{{Col: 0}, {Col: 1, Desc: true}}, false},
		{"partition not leading", []plan.SortKey{{Col: 1}, {Col: 0}}, false},
		{"missing orderBy", []plan.SortKey{{Col: 0}}, false},
		{"unordered", nil, false},
	}
	for _, c := range cases {
		if got := windowSortSatisfied(c.delivered, g); got != c.want {
			t.Errorf("%s: windowSortSatisfied=%v, want %v", c.name, got, c.want)
		}
	}
	// Multi-column partition: any permutation of the set works.
	g2 := &windowGroup{partitionBy: []int{2, 0}}
	if !windowSortSatisfied([]plan.SortKey{{Col: 0}, {Col: 2, Desc: true}}, g2) {
		t.Error("permuted partition cover rejected")
	}
	// Empty spec never "satisfies" (nothing to skip).
	if windowSortSatisfied([]plan.SortKey{{Col: 0}}, &windowGroup{}) {
		t.Error("empty spec should not classify as presorted")
	}
}

func TestPlanWindowGroupsShared(t *testing.T) {
	inTypes := bigints(3)
	fns := []plan.WindowFn{
		{Fn: "rank", PartitionBy: []int{0}, OrderBy: []plan.SortKey{{Col: 1}}, T: types.TBigint},
		{Fn: "rank", PartitionBy: []int{0}, OrderBy: []plan.SortKey{{Col: 2}}, T: types.TBigint},
		{Fn: "count", PartitionBy: []int{1}, T: types.TBigint},
	}
	groups, err := buildWindowGroups(fns, inTypes)
	if err != nil {
		t.Fatal(err)
	}
	wp := planWindowGroups(groups, nil, true)
	if len(wp.shared) != 1 || len(wp.shared[0]) != 2 {
		t.Fatalf("expected one shared bucket of 2 groups, got %+v", wp.shared)
	}
	if len(wp.solo) != 1 {
		t.Fatalf("expected one solo group, got %+v", wp.solo)
	}
	// Knob off: everything solo.
	wp = planWindowGroups(groups, nil, false)
	if len(wp.shared) != 0 || len(wp.solo) != 3 {
		t.Fatalf("props-off classification wrong: %+v", wp)
	}
}

func TestDeliveredPropsProjectRemap(t *testing.T) {
	inTypes := bigints(3)
	srt := &SortOp{Input: testValues(inTypes...), Keys: []plan.SortKey{{Col: 2}, {Col: 0}}}
	// Project [col2, col0] — ordering remaps to output ordinals [0, 1].
	e2, err := Compile(&plan.ColRef{Idx: 2, T: types.TBigint}, inTypes)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := Compile(&plan.ColRef{Idx: 0, T: types.TBigint}, inTypes)
	if err != nil {
		t.Fatal(err)
	}
	proj := &ProjectOp{Input: srt, Exprs: []*CompiledExpr{e2, e0}, Out: bigints(2)}
	got := DeliveredProps(proj).Ordering
	if len(got) != 2 || got[0].Col != 0 || got[1].Col != 1 {
		t.Fatalf("remapped ordering wrong: %+v", got)
	}
}

func TestExplainPhysical(t *testing.T) {
	srt := &SortOp{Input: testValues(bigints(2)...), Keys: []plan.SortKey{{Col: 1, Desc: true}}}
	out := ExplainPhysical(&LimitOp{Input: srt, N: 3})
	for _, want := range []string{"Limit n=3", "Sort keys=[$1 desc]", "Values rows=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}
