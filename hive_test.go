package hive

import (
	"strings"
	"testing"
)

func open(t *testing.T) (*Warehouse, *Session) {
	t.Helper()
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	return wh, wh.Session()
}

// setupStore creates the paper's running example schema with data.
func setupStore(t *testing.T, s *Session) {
	t.Helper()
	s.MustExec(`CREATE TABLE store_sales (
		ss_item_sk BIGINT, ss_customer_sk BIGINT, ss_ticket_number BIGINT,
		ss_quantity INT, ss_sales_price DECIMAL(7,2)
	) PARTITIONED BY (ss_sold_date_sk INT)`)
	s.MustExec(`CREATE TABLE item (
		i_item_sk BIGINT, i_category STRING,
		PRIMARY KEY (i_item_sk) DISABLE NOVALIDATE RELY
	)`)
	s.MustExec(`INSERT INTO item VALUES
		(1, 'Sports'), (2, 'Books'), (3, 'Sports'), (4, 'Home')`)
	s.MustExec(`INSERT INTO store_sales PARTITION (ss_sold_date_sk=1) VALUES
		(1, 10, 100, 2, 5.00), (2, 11, 101, 1, 10.00), (3, 10, 102, 4, 2.50)`)
	s.MustExec(`INSERT INTO store_sales PARTITION (ss_sold_date_sk=2) VALUES
		(3, 12, 103, 2, 2.50), (4, 13, 104, 1, 7.50), (1, 10, 105, 3, 5.00)`)
}

func TestEndToEndQuery(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	res, err := s.Query(`SELECT i_category, SUM(ss_quantity * ss_sales_price) AS total
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk
		GROUP BY i_category
		ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// Sports: 2*5 + 4*2.5 + 2*2.5 + 3*5 = 10+10+5+15 = 40.00
	// Books: 10.00; Home: 7.50
	want := "Sports|40.00\nBooks|10.00\nHome|7.50"
	if res.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", res, want)
	}
}

func TestACIDUpdateDeleteMerge(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	s.MustExec(`UPDATE item SET i_category = 'Outdoors' WHERE i_item_sk = 3`)
	res := s.MustExec(`SELECT i_category FROM item WHERE i_item_sk = 3`)
	if res.String() != "Outdoors" {
		t.Fatalf("update: %s", res)
	}
	s.MustExec(`DELETE FROM item WHERE i_item_sk = 4`)
	res = s.MustExec(`SELECT count(*) FROM item`)
	if res.String() != "3" {
		t.Fatalf("delete: %s", res)
	}
	s.MustExec(`CREATE TABLE item_updates (k BIGINT, cat STRING)`)
	s.MustExec(`INSERT INTO item_updates VALUES (1, 'Fitness'), (99, 'New')`)
	s.MustExec(`MERGE INTO item t USING item_updates u ON t.i_item_sk = u.k
		WHEN MATCHED THEN UPDATE SET i_category = u.cat
		WHEN NOT MATCHED THEN INSERT VALUES (u.k, u.cat)`)
	res = s.MustExec(`SELECT i_item_sk, i_category FROM item ORDER BY i_item_sk`)
	want := "1|Fitness\n2|Books\n3|Outdoors\n99|New"
	if res.String() != want {
		t.Fatalf("merge:\n%s\nwant:\n%s", res, want)
	}
}

func TestPartitionPruningVisibleInPlan(t *testing.T) {
	wh, s := open(t)
	setupStore(t, s)
	wh.Server().FS.ResetStats()
	res := s.MustExec(`SELECT count(*) FROM store_sales WHERE ss_sold_date_sk = 2`)
	if res.String() != "3" {
		t.Fatalf("count: %s", res)
	}
}

func TestResultCache(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	q := `SELECT count(*) FROM item`
	s.MustExec(q)
	s.MustExec(q)
	if !s.Internal().LastCacheHit {
		t.Error("second identical query should hit the results cache")
	}
	// A write invalidates.
	s.MustExec(`INSERT INTO item VALUES (50, 'Toys')`)
	res := s.MustExec(q)
	if s.Internal().LastCacheHit {
		t.Error("cache must not serve across an invalidating write")
	}
	if res.String() != "5" {
		t.Errorf("post-write count: %s", res)
	}
}

func TestMaterializedViewRewrite(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	s.MustExec(`CREATE MATERIALIZED VIEW sales_by_cat AS
		SELECT i_category, SUM(ss_sales_price) AS sum_sales, COUNT(*) AS cnt
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk
		GROUP BY i_category`)
	res := s.MustExec(`SELECT i_category, SUM(ss_sales_price)
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk
		GROUP BY i_category ORDER BY i_category`)
	if !s.Internal().LastRewriteUsedMV {
		t.Fatalf("query should be answered from the MV; plan:\n%s", s.Internal().LastPlan)
	}
	want := "Books|10.00\nHome|7.50\nSports|15.00"
	if res.String() != want {
		t.Errorf("mv rewrite result:\n%s\nwant:\n%s", res, want)
	}
	// After new inserts the view is stale: no rewrite until REBUILD.
	s.MustExec(`INSERT INTO store_sales PARTITION (ss_sold_date_sk=3) VALUES (2, 9, 200, 1, 10.00)`)
	s.MustExec(`SELECT i_category, SUM(ss_sales_price) FROM store_sales, item
		WHERE ss_item_sk = i_item_sk GROUP BY i_category`)
	if s.Internal().LastRewriteUsedMV {
		t.Error("stale MV must not be used")
	}
	s.MustExec(`ALTER MATERIALIZED VIEW sales_by_cat REBUILD`)
	res = s.MustExec(`SELECT i_category, SUM(ss_sales_price) FROM store_sales, item
		WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY i_category`)
	if !s.Internal().LastRewriteUsedMV {
		t.Error("rebuilt MV should be used again")
	}
	if !strings.Contains(res.String(), "Books|20.00") {
		t.Errorf("after rebuild: %s", res)
	}
}

func TestDruidFederationPushdown(t *testing.T) {
	_, s := open(t)
	s.MustExec(`CREATE EXTERNAL TABLE druid_events (
		__time TIMESTAMP, d1 STRING, m1 DOUBLE
	) STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
	TBLPROPERTIES ('druid.datasource' = 'events')`)
	s.MustExec(`INSERT INTO druid_events VALUES
		(CAST('2018-01-01 00:00:00' AS timestamp), 'a', 1.5),
		(CAST('2018-01-02 00:00:00' AS timestamp), 'b', 2.0),
		(CAST('2018-01-03 00:00:00' AS timestamp), 'a', 3.0)`)
	res := s.MustExec(`SELECT d1, SUM(m1) AS sm FROM druid_events GROUP BY d1 ORDER BY sm DESC LIMIT 10`)
	if res.String() != "a|4.5\nb|2" {
		t.Fatalf("druid groupBy: %s", res)
	}
	if !strings.Contains(s.Internal().LastPlan, "ForeignScan") ||
		!strings.Contains(s.Internal().LastPlan, "groupBy") {
		t.Errorf("computation not pushed to Druid:\n%s", s.Internal().LastPlan)
	}
}

func TestV12ProfileGatesSQL(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	s.SetConf("hive.profile", "1.2")
	if _, err := s.Exec(`SELECT ss_item_sk FROM store_sales INTERSECT SELECT i_item_sk FROM item`); err == nil {
		t.Error("INTERSECT should fail under the 1.2 profile")
	}
	if _, err := s.Exec(`SELECT i_category FROM item ORDER BY i_item_sk`); err == nil {
		t.Error("ORDER BY unselected column should fail under 1.2")
	}
	// Still runs plain queries.
	if _, err := s.Exec(`SELECT count(*) FROM item`); err != nil {
		t.Errorf("plain query under 1.2: %v", err)
	}
	s.SetConf("hive.profile", "3.1")
	if _, err := s.Exec(`SELECT ss_item_sk FROM store_sales INTERSECT SELECT i_item_sk FROM item`); err != nil {
		t.Errorf("INTERSECT under 3.1: %v", err)
	}
}

func TestOptimizerProfilesAgreeOnResults(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	queries := []string{
		`SELECT i_category, count(*) FROM store_sales JOIN item ON ss_item_sk = i_item_sk
		 WHERE ss_sold_date_sk = 1 GROUP BY i_category ORDER BY i_category`,
		`SELECT ss_customer_sk, SUM(ss_sales_price) AS s FROM store_sales, item
		 WHERE ss_item_sk = i_item_sk AND i_category = 'Sports'
		 GROUP BY ss_customer_sk ORDER BY s DESC`,
		`SELECT count(*) FROM store_sales WHERE ss_item_sk IN
		 (SELECT i_item_sk FROM item WHERE i_category = 'Sports')`,
	}
	var v31 []string
	for _, q := range queries {
		v31 = append(v31, s.MustExec(q).String())
	}
	// Disable each optimization and in MR mode: results must not change.
	s.SetConf("hive.profile", "1.2")
	s.SetConf("hive.execution.mode", "mr")
	for i, q := range queries {
		got := s.MustExec(q).String()
		if got != v31[i] {
			t.Errorf("query %d differs between profiles:\nv3.1: %s\nv1.2/mr: %s", i, v31[i], got)
		}
	}
}

func TestWorkloadManagementPaperExample(t *testing.T) {
	_, s := open(t)
	for _, stmt := range []string{
		`CREATE RESOURCE PLAN daytime`,
		`CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=5`,
		`CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20`,
		`CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl`,
		`ADD RULE downgrade TO bi`,
		`CREATE APPLICATION MAPPING visualization_app IN daytime TO bi`,
		`ALTER PLAN daytime SET DEFAULT POOL = etl`,
		`ALTER RESOURCE PLAN daytime ENABLE ACTIVATE`,
	} {
		s.MustExec(stmt)
	}
	setupStore(t, s)
	s.SetUser("alice", "visualization_app")
	if _, err := s.Query(`SELECT count(*) FROM item`); err != nil {
		t.Fatalf("query under workload management: %v", err)
	}
}

func TestExplain(t *testing.T) {
	_, s := open(t)
	setupStore(t, s)
	res := s.MustExec(`EXPLAIN SELECT i_category FROM item WHERE i_item_sk = 1`)
	text := res.Rows[0][0].S
	if !strings.Contains(text, "TableScan") {
		t.Errorf("explain output:\n%s", text)
	}
}
