package hive

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§7), plus ablations for the design choices DESIGN.md calls
// out. Run everything with:
//
//	go test -bench=. -benchmem
//
// or print the paper-style rows/series with cmd/hive-bench.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bench"
)

// runner adapts a Session to the bench.Runner interface.
type runner struct{ s *Session }

func (r runner) Exec(q string) error { _, err := r.s.Exec(q); return err }
func (r runner) SetConf(k, v string) { r.s.SetConf(k, v) }

func newTPCDSWarehouse(b *testing.B, sc bench.TPCDSScale) (*Warehouse, *Session) {
	b.Helper()
	wh, err := Open(Config{DiskLatency: true})
	if err != nil {
		b.Fatal(err)
	}
	s := wh.Session()
	if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, sc); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { wh.Close() })
	return wh, s
}

func newSSBWarehouse(b *testing.B, sc bench.SSBScale) (*Warehouse, *Session) {
	b.Helper()
	wh, err := Open(Config{DiskLatency: true})
	if err != nil {
		b.Fatal(err)
	}
	s := wh.Session()
	if err := bench.SetupSSB(func(q string) error { _, err := s.Exec(q); return err }, sc); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { wh.Close() })
	return wh, s
}

// BenchmarkFigure7 reruns the paper's Hive 1.2 vs 3.1 comparison (Figure 7)
// and prints the per-query series.
func BenchmarkFigure7(b *testing.B) {
	_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timings, err := bench.Figure7(runner{s}, bench.TPCDSQueries(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			bench.PrintFigure7(os.Stdout, timings)
			b.StartTimer()
		}
	}
}

// BenchmarkTable1 reruns Table 1: aggregate response time with LLAP
// enabled vs plain containers.
func BenchmarkTable1(b *testing.B) {
	_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Table1(runner{s}, bench.TPCDSQueries(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			bench.PrintTable1(os.Stdout, res)
			b.StartTimer()
		}
	}
}

// BenchmarkFigure8 reruns the SSB federation experiment: the denormalized
// materialized view stored natively vs in Druid (queried over HTTP/JSON).
func BenchmarkFigure8(b *testing.B) {
	_, s := newSSBWarehouse(b, bench.SmallSSB())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timings, err := bench.RunFigure8(runner{s}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			bench.PrintFigure8(os.Stdout, timings)
			b.StartTimer()
		}
	}
}

// BenchmarkParallelSpeedup measures morsel-driven intra-query parallelism
// (hive.parallelism) on scan/agg- and join-heavy queries over the
// day-partitioned TPC-DS fact table. The LLAP data cache is disabled so
// every iteration pays the simulated storage latency — the cold-scan cost
// that parallel workers overlap, as LLAP executor slots do in the paper's
// Table 1. Executors are oversized so the pool never caps the DOP.
func BenchmarkParallelSpeedup(b *testing.B) {
	queries := []struct {
		name, sql string
		flat      bool // needs the unpartitioned store_sales_flat copy
	}{
		{name: "scan_agg", sql: `SELECT ss_sold_date_sk, COUNT(*), SUM(ss_sales_price), AVG(ss_quantity)
			FROM store_sales GROUP BY ss_sold_date_sk`},
		{name: "join_agg", sql: `SELECT i_category, SUM(ss_sales_price), COUNT(*)
			FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category`},
		// Unpartitioned fact table: a single directory split that only
		// stripe-granular morsels (PR 2) can fan out across workers.
		{name: "unpart_scan_agg", flat: true, sql: `SELECT ss_sold_date_sk, COUNT(*), SUM(ss_sales_price), AVG(ss_quantity)
			FROM store_sales_flat GROUP BY ss_sold_date_sk`},
		// ORDER BY over the whole fact table: per-worker sorted runs
		// streamed through the loser-tree merge exchange (PR 3). Before
		// the parallel sort, the coordinator re-serialized every row.
		{name: "order_by", sql: bench.OrderBySQL},
		// ORDER BY + LIMIT: per-worker bounded heaps with the limit
		// pushed into each run (PR 3).
		{name: "sort_topn", sql: bench.SortTopNSQL},
	}
	dops := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		dops = append(dops, n)
	}
	for _, q := range queries {
		for _, dop := range dops {
			b.Run(fmt.Sprintf("%s/dop=%d", q.name, dop), func(b *testing.B) {
				wh, err := Open(Config{DiskLatency: true, Executors: 4 * runtime.NumCPU()})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { wh.Close() })
				s := wh.Session()
				if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.SmallTPCDS()); err != nil {
					b.Fatal(err)
				}
				if q.flat {
					if err := bench.SetupUnpartitionedSales(func(q string) error { _, err := s.Exec(q); return err }, bench.SmallTPCDS()); err != nil {
						b.Fatal(err)
					}
				}
				s.SetConf("hive.query.results.cache.enabled", "false")
				s.SetConf("hive.llap.enabled", "false")
				s.SetConf("hive.parallelism", fmt.Sprint(dop))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Exec(q.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBeyondMemory runs sort and aggregation over inputs much larger
// than a deliberately tiny hive.query.max.memory, so every iteration
// exercises the spill paths of PR 4 end to end: external sorted runs
// merged through the loser tree, and hash-partitioned aggregate partials
// re-aggregated partition at a time. The unlimited variants of the same
// queries are the no-spill baselines the budgeted runs are compared
// against (BENCH_PR4.json).
func BenchmarkBeyondMemory(b *testing.B) {
	cases := []struct {
		name, sql string
	}{
		// Whole-fact-table ORDER BY: ~20000 rows materialize in the sort.
		{name: "sort", sql: bench.OrderBySQL},
		// High-cardinality GROUP BY: one group per ticket.
		{name: "agg", sql: `SELECT ss_ticket_number, COUNT(*), SUM(ss_sales_price)
			FROM store_sales GROUP BY ss_ticket_number`},
	}
	budgets := []struct {
		name, value string
	}{
		{"unlimited", "0"},
		// Far below the working set (~2-4 MB materialized rows): forces
		// many spilled runs / partial flushes per query.
		{"budget256k", "262144"},
	}
	for _, c := range cases {
		for _, bud := range budgets {
			b.Run(fmt.Sprintf("%s/%s", c.name, bud.name), func(b *testing.B) {
				wh, err := Open(Config{DiskLatency: true})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { wh.Close() })
				s := wh.Session()
				if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.SmallTPCDS()); err != nil {
					b.Fatal(err)
				}
				s.SetConf("hive.query.results.cache.enabled", "false")
				s.SetConf("hive.parallelism", "4")
				s.SetConf("hive.query.max.memory", bud.value)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Exec(c.sql); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if bud.value != "0" && s.inner.LastSpilledBytes == 0 {
					b.Fatal("budgeted beyond_memory case did not spill")
				}
			})
		}
	}
}

// q88-style query whose branches compute the same join subexpression with
// different aggregates on top: the shared work optimizer's showcase
// (paper §4.5, §7.1 reports 2.7x on q88). The common filtered join is
// evaluated once and spooled to all three consumers.
const sharedWorkQuery = `SELECT a.cnt, b.total, c.mx FROM
	(SELECT COUNT(*) AS cnt   FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 1 AND 6) a,
	(SELECT SUM(ss_sales_price) AS total FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 1 AND 6) b,
	(SELECT MAX(ss_list_price)  AS mx    FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 1 AND 6) c`

// BenchmarkAblationSharedWork measures the shared work optimizer on a
// query with repeated subexpressions (§4.5).
func BenchmarkAblationSharedWork(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.SetConf("hive.optimize.sharedwork", fmt.Sprint(on))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(sharedWorkQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSemijoin measures dynamic semijoin reduction (§4.6) on
// a star join with a selective dimension filter.
func BenchmarkAblationSemijoin(b *testing.B) {
	const q = `SELECT ss_customer_sk, SUM(ss_sales_price) AS sum_sales
		FROM store_sales, item
		WHERE ss_item_sk = i_item_sk AND i_category = 'Music' AND i_brand = 'brandA'
		GROUP BY ss_customer_sk ORDER BY sum_sales DESC LIMIT 10`
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.SetConf("hive.optimize.semijoin", fmt.Sprint(on))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationResultCache measures the query results cache (§4.3):
// identical repeated queries served from cache vs recomputed.
func BenchmarkAblationResultCache(b *testing.B) {
	const q = `SELECT i_category, SUM(ss_sales_price) FROM store_sales, item
		WHERE ss_item_sk = i_item_sk GROUP BY i_category`
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "hit"
		}
		b.Run(name, func(b *testing.B) {
			_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
			s.SetConf("hive.query.results.cache.enabled", fmt.Sprint(on))
			if _, err := s.Exec(q); err != nil { // warm / fill
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLLAPCache isolates the LLAP data cache (§5.1): cold
// cache vs warm cache scans.
func BenchmarkAblationLLAPCache(b *testing.B) {
	const q = `SELECT SUM(ss_sales_price) FROM store_sales`
	b.Run("warm", func(b *testing.B) {
		wh, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
		s.SetConf("hive.query.results.cache.enabled", "false")
		if _, err := s.Exec(q); err != nil {
			b.Fatal(err)
		}
		stats := wh.Server().Cache.Stats()
		if stats.Misses == 0 {
			b.Fatal("expected cache misses on first scan")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
		s.SetConf("hive.query.results.cache.enabled", "false")
		s.SetConf("hive.llap.enabled", "false") // bypass the cache entirely
		if _, err := s.Exec(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMRvsContainer isolates the MapReduce-era stage
// materialization cost (§2, §5): every shuffle boundary spills to the DFS.
func BenchmarkAblationMRvsContainer(b *testing.B) {
	const q = `SELECT i_category, COUNT(*) FROM store_sales, item
		WHERE ss_item_sk = i_item_sk GROUP BY i_category ORDER BY i_category`
	for _, mode := range []string{"mr", "container", "llap"} {
		b.Run(mode, func(b *testing.B) {
			_, s := newTPCDSWarehouse(b, bench.TinyTPCDS())
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.SetConf("hive.execution.mode", mode)
			if mode != "llap" {
				s.SetConf("hive.llap.enabled", "false")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMVRewrite measures materialized view rewriting (§4.4):
// the aggregate answered from the MV vs recomputed from base tables.
func BenchmarkAblationMVRewrite(b *testing.B) {
	const q = `SELECT i_category, SUM(ss_sales_price) FROM store_sales, item
		WHERE ss_item_sk = i_item_sk GROUP BY i_category`
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			_, s := newTPCDSWarehouse(b, bench.SmallTPCDS())
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.MustExec(`CREATE MATERIALIZED VIEW cat_sales AS
				SELECT i_category, SUM(ss_sales_price) AS s, COUNT(*) AS c
				FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category`)
			s.SetConf("hive.materializedview.rewriting", fmt.Sprint(on))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompaction measures merge-on-read overhead (§3.2):
// scans over many small deltas vs after major compaction. The §8 claim is
// that post-redesign ACID reads are at par with compacted data.
func BenchmarkAblationCompaction(b *testing.B) {
	setup := func(b *testing.B) *Session {
		wh, err := Open(Config{DiskLatency: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { wh.Close() })
		s := wh.Session()
		s.MustExec(`CREATE TABLE frag (k BIGINT, v STRING)`)
		// Many tiny transactions -> many delta directories.
		for i := 0; i < 40; i++ {
			s.MustExec(fmt.Sprintf(`INSERT INTO frag VALUES (%d, 'v%d'), (%d, 'w%d')`, i, i, i+1000, i))
		}
		s.SetConf("hive.query.results.cache.enabled", "false")
		return s
	}
	b.Run("fragmented", func(b *testing.B) {
		s := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(`SELECT COUNT(*), MAX(k) FROM frag`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compacted", func(b *testing.B) {
		s := setup(b)
		// Major-compact by rewriting through INSERT OVERWRITE (the
		// compactor path is exercised in internal/acid benchmarks).
		rows := s.MustExec(`SELECT k, v FROM frag ORDER BY k`)
		s.MustExec(`CREATE TABLE frag2 (k BIGINT, v STRING)`)
		ins := "INSERT INTO frag2 VALUES "
		for i, r := range rows.Rows {
			if i > 0 {
				ins += ", "
			}
			ins += fmt.Sprintf("(%s, '%s')", r[0].String(), r[1].S)
		}
		s.MustExec(ins)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(`SELECT COUNT(*), MAX(k) FROM frag2`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPropertyPlanning measures the three property-planning paydays
// (PR 7) by running each shape with hive.planner.properties on and off at
// a fixed DOP — the win is work elided (sorts skipped, partition passes
// shared, exchanges and shared hash builds dropped), so it shows even on a
// single core. New BenchmarkParallelSpeedup-style cases; results recorded
// in BENCH_PR7.json.
func BenchmarkPropertyPlanning(b *testing.B) {
	// The window paydays elide string-keyed sorts, so they run over a
	// wide item dimension (string sort keys, few large partitions) with no
	// simulated storage latency — the saved work is CPU, not I/O.
	wideItems := bench.TPCDSScale{SalesRows: 1000, ReturnsRows: 100, Items: 30000, Customers: 50, Stores: 4, DateDays: 4}
	shapes := []struct {
		name, sql string
		dop       int
		mem       bool // no simulated disk latency: the payday is CPU work
		scale     bench.TPCDSScale
		conf      map[string]string
	}{
		// Payday 1: ORDER BY commutes below the window and the window's
		// own partition+order sort disappears — one string sort instead
		// of two.
		{name: "window_sorted", dop: 1, mem: true, scale: wideItems, sql: `SELECT i_item_sk, i_category, i_item_id,
			rank() OVER (PARTITION BY i_category ORDER BY i_item_id)
			FROM item ORDER BY i_category, i_item_id`},
		// Payday 2: three distinct window specs over the same PARTITION BY
		// run one shared partition pass instead of three full partition
		// sorts; the per-partition re-sorts never touch the partition key.
		{name: "window_shared", dop: 1, mem: true, scale: wideItems, sql: `SELECT i_item_sk,
			COUNT(*) OVER (PARTITION BY i_category),
			SUM(i_item_sk) OVER (PARTITION BY i_category ORDER BY i_item_id),
			rank() OVER (PARTITION BY i_category ORDER BY i_current_price DESC)
			FROM item`},
		// Payday 3: grouping on the scan's partition column keeps worker
		// partials key-disjoint — the final merge appends instead of
		// re-probing the hash table, and stripe expansion is skipped.
		{name: "partition_agg", dop: 4, scale: bench.SmallTPCDS(), sql: `SELECT ss_sold_date_sk, COUNT(*), SUM(ss_sales_price)
			FROM store_sales GROUP BY ss_sold_date_sk ORDER BY ss_sold_date_sk`},
		// Payday 3 (join form): co-partitioned join runs per-unit serial
		// builds with no shared hash table and no exchange.
		{name: "partition_join", dop: 4, scale: bench.SmallTPCDS(),
			conf: map[string]string{"hive.optimize.semijoin": "false"},
			sql: `SELECT ss_item_sk, ss_ticket_number, sr_item_sk FROM store_sales, store_returns
			WHERE ss_sold_date_sk = sr_returned_date_sk AND ss_item_sk = sr_item_sk`},
	}
	for _, sh := range shapes {
		for _, props := range []string{"on", "off"} {
			b.Run(fmt.Sprintf("%s/props=%s", sh.name, props), func(b *testing.B) {
				wh, err := Open(Config{DiskLatency: !sh.mem, Executors: 4 * runtime.NumCPU()})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { wh.Close() })
				s := wh.Session()
				if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, sh.scale); err != nil {
					b.Fatal(err)
				}
				s.SetConf("hive.query.results.cache.enabled", "false")
				s.SetConf("hive.llap.enabled", "false")
				s.SetConf("hive.parallelism", fmt.Sprint(sh.dop))
				s.SetConf("hive.planner.properties", fmt.Sprint(props == "on"))
				for k, v := range sh.conf {
					s.SetConf(k, v)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Exec(sh.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPreparedServing measures the hot serving path (PR 8): one query
// shape executed with rotating literals through three pipelines — the cold
// per-query pipeline (plan cache off), the transparent normalized plan
// cache (ad-hoc SQL, template reused across literals), and PREPARE/EXECUTE
// (no parsing or planning at all). The result cache is off in every mode
// and the literal rotates each iteration, so the delta is compilation
// elided, not rows remembered. On the EXECUTE path LastCompileNanos must
// be exactly zero; the benchmark asserts it. Results recorded in
// BENCH_PR8.json.
func BenchmarkPreparedServing(b *testing.B) {
	// Serving shape: hot data is small and the query is compile-heavy (a
	// 4-way join the optimizer must reorder), so per-query planning is a
	// large slice of latency — the regime §4.3 targets.
	scale := bench.TPCDSScale{SalesRows: 200, ReturnsRows: 20, Items: 50, Customers: 20, Stores: 4, DateDays: 4}
	const shape = `SELECT i_category, s_store_name, COUNT(*), SUM(ss_sales_price)
		FROM store_sales, item, store, date_dim
		WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk
		  AND ss_sold_date_sk = d_date_sk AND ss_quantity > %d
		GROUP BY i_category, s_store_name ORDER BY i_category, s_store_name`
	newSession := func(b *testing.B) *Session {
		wh, err := Open(Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { wh.Close() })
		s := wh.Session()
		if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, scale); err != nil {
			b.Fatal(err)
		}
		s.SetConf("hive.query.results.cache.enabled", "false")
		s.SetConf("hive.parallelism", "1")
		return s
	}
	b.Run("adhoc_cold", func(b *testing.B) {
		s := newSession(b)
		s.SetConf("hive.query.plan.cache.enabled", "false")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(fmt.Sprintf(shape, i%50)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adhoc_plancache", func(b *testing.B) {
		s := newSession(b)
		s.MustExec(fmt.Sprintf(shape, 0)) // warm the template
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(fmt.Sprintf(shape, i%50)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared_execute", func(b *testing.B) {
		s := newSession(b)
		s.MustExec(`PREPARE serve AS ` + fmt.Sprintf(shape, 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(fmt.Sprintf(`EXECUTE serve (%d)`, i%50)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if n := s.Internal().LastCompileNanos; n != 0 {
			b.Fatalf("EXECUTE hot path compiled: %dns", n)
		}
	})
}
