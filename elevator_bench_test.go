package hive

// BenchmarkElevator measures the LLAP I/O elevator (PR 9, paper §5.1):
// the async decode pool plus decoded-vector cache against the synchronous
// decode path (hive.llap.elevator=false). Four regimes:
//
//   - repeat_selective: a needle-in-haystack selective scan (non-sargable
//     predicate, so every stripe is read; one row survives) repeated
//     against warm caches over a delete-free table. Decode is the
//     dominant per-query cost, and with the elevator on every stripe is
//     served from the decoded-vector cache — this isolates decode
//     elision, the decoded cache's reason to exist.
//   - repeat_selective_acid: the same needle over an ACID table with live
//     delete deltas. The per-row delete anti-join runs identically in
//     both modes, so the ratio shows the benefit under merge-on-read.
//   - repeat_sarg: a narrow sargable range — most stripes are skipped by
//     min/max statistics before decode (and before prefetch enqueue), the
//     few survivors come from the decoded cache.
//   - cold: a fresh warehouse per measurement (cold chunk and decoded
//     caches) with simulated disk latency at DOP 4, so the win is
//     overlap — workers hint upcoming morsels, elevator threads absorb
//     seek latency ahead of the consumers — not cache residency.
//
// Results recorded in BENCH_PR9.json; repro commands there.

import (
	"fmt"
	"testing"
)

// setupElevatorBenchTable builds the same doubled multi-stripe table as
// setupElevatorTable but without delete deltas, isolating decode cost from
// the per-row delete anti-join (which the elevator does not touch).
func setupElevatorBenchTable(t testing.TB, s *Session) {
	t.Helper()
	s.MustExec(`CREATE TABLE ev (k BIGINT, v DOUBLE, tag STRING)`)
	ins := "INSERT INTO ev VALUES "
	for i := 0; i < 512; i++ {
		if i > 0 {
			ins += ", "
		}
		ins += fmt.Sprintf("(%d, %d.5, 'tag%d')", i, i, i%7)
	}
	s.MustExec(ins)
	total := 512
	for total < 32768 {
		s.MustExec(fmt.Sprintf(`INSERT INTO ev SELECT k + %d, v + %d.0, tag FROM ev`, total, total))
		total *= 2
	}
	s.SetConf("hive.query.results.cache.enabled", "false")
}

func benchElevatorWarehouse(b *testing.B, elevator string, deletes bool) (*Warehouse, *Session) {
	b.Helper()
	wh, err := Open(Config{DiskLatency: true})
	if err != nil {
		b.Fatal(err)
	}
	s := wh.Session()
	if deletes {
		setupElevatorTable(b, s)
	} else {
		setupElevatorBenchTable(b, s)
	}
	s.SetConf("hive.llap.elevator", elevator)
	return wh, s
}

func BenchmarkElevator(b *testing.B) {
	// Non-sargable needle: every stripe is read, one row survives.
	const needle = `SELECT k, v, tag FROM ev WHERE k + 1 = 26051`
	// Sargable narrow range: stripe statistics skip all but one stripe.
	const sarg = `SELECT SUM(v) FROM ev WHERE k >= 26000 AND k < 26100`
	const full = `SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM ev`
	modes := []struct{ name, elevator string }{{"on", "true"}, {"off", "false"}}

	repeat := func(name, q string, deletes bool) {
		for _, m := range modes {
			b.Run(name+"/"+m.name, func(b *testing.B) {
				wh, s := benchElevatorWarehouse(b, m.elevator, deletes)
				defer wh.Close()
				s.SetConf("hive.parallelism", "1")
				s.MustExec(q) // warm chunk + decoded caches
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.MustExec(q)
				}
			})
		}
	}
	repeat("repeat_selective", needle, false)
	repeat("repeat_selective_acid", needle, true)
	repeat("repeat_sarg", sarg, true)

	for _, m := range modes {
		b.Run("cold/"+m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				wh, s := benchElevatorWarehouse(b, m.elevator, true)
				s.SetConf("hive.parallelism", "4")
				b.StartTimer()
				s.MustExec(full)
				b.StopTimer()
				wh.Close()
			}
		})
	}
}
