GO ?= go

.PHONY: check build test vet race spill bench

# check is the CI gate: vet, build, a -race short-test pass over every
# package (catches data races in the parallel scan/agg/join paths, the
# stripe-granular morsel sharing and the shared memory governor), the
# full suite, then the constrained-budget spill regressions — the spill
# path can never silently rot because check always executes it.
check: vet build race test spill

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

# spill reruns the memory-governed regressions at tiny budgets: external
# sort vs in-memory property tests, agg/join spill equivalence, scratch
# cleanup, and the end-to-end beyond-memory byte-identity checks.
spill:
	$(GO) test -run 'Spill|ExternalSort|BeyondMemory|Governor|ScratchCleanup|MemoryTriggers' ./internal/exec ./internal/wm .

# bench reruns the paper figures, the parallel speedup numbers and the
# beyond-memory (spilling) cases. Filter the parallel-speedup and
# beyond-memory cases with CASES, e.g.:
#
#	make bench CASES=sort_topn
#	make bench CASES='order_by|sort_topn'
#	make bench CASES='sort/budget256k'        # BenchmarkBeyondMemory
BENCHRE = $(if $(CASES),(BenchmarkParallelSpeedup|BenchmarkBeyondMemory)/($(CASES)),.)
bench:
	$(GO) test -run xxx -bench '$(BENCHRE)' -benchmem .
