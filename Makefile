GO ?= go

.PHONY: check build test vet race lint spill props serve elevator hammer bench

# check is the CI gate: vet, build, a -race short-test pass over every
# package (catches data races in the parallel scan/agg/join paths, the
# stripe-granular morsel sharing and the shared memory governor), the
# full suite, then the constrained-budget spill regressions — the spill
# path can never silently rot because check always executes it.
check: vet build lint race test spill props serve elevator

vet:
	$(GO) vet ./...

# lint builds and runs hivelint (cmd/hivelint), the repo-invariant
# static-analysis suite: reservation-balance, snapshot-pinning,
# no-alias-escape, close-and-cancel and conf-knob-registry analyzers over
# every package. Any unsuppressed finding fails check; deliberate
# exceptions carry //lint:ignore <analyzer> <reason> annotations, and the
# golden-diagnostic fixtures for each analyzer run under `make test`
# (go test ./internal/lint).
lint:
	$(GO) run ./cmd/hivelint .

build:
	$(GO) build ./...

race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

# spill reruns the memory-governed regressions at tiny budgets: external
# sort vs in-memory property tests, agg/join spill equivalence, the
# window/spool spill paths added in PR 5, scratch cleanup, and the
# end-to-end beyond-memory byte-identity checks — plus a -race pass over
# one spool hammered by concurrent worker consumers, so the shared-cursor
# and single-flight paths are exercised with the detector on every check.
spill:
	$(GO) test -run 'Spill|ExternalSort|BeyondMemory|Governor|ScratchCleanup|MemoryTriggers|WindowSpill|SpoolS' ./internal/exec ./internal/wm .
	$(GO) test -race -run 'SpoolSingleFlight|SpoolCursor|SpoolSharedParallelRace' ./internal/exec .

# props reruns the property-planning gate (PR 7): the plan/exec unit
# tests for delivered-property derivation, enforcer elision and window
# group planning, plus the end-to-end golden-EXPLAIN and byte-identity
# suite that proves hive.planner.properties=true produces the same
# bytes as the enforcer-everywhere plans at DOP 1/2/4.
props:
	$(GO) test -run 'Props|OrderingSatisfies|PartitioningSatisfies|OrderingCoversSet|ApplyProperties|PushSortThroughWindow|WindowSortSatisfied|PlanWindowGroups|DeliveredProps|ExplainPhysical' ./internal/plan ./internal/exec .

# serve is the hot-path serving gate (PR 8): literal parameterization and
# digest tests, plan-cache and rewritten result-cache unit suites (the
# result cache also under -race with -tags stress, which deep-freezes
# cached rows and panics on any post-fill mutation), the hs2 regression
# tests for the snapshot-TOCTOU / aliasing / eviction-on-replace /
# admission-digest fixes, and the end-to-end prepared-vs-adhoc
# byte-identity, EXECUTE+INSERT hammer and thundering-herd tests under
# -race.
serve:
	$(GO) test ./internal/plancache
	$(GO) test ./internal/sql -run 'Parameterize|ParsePrepareExecuteDeallocate'
	$(GO) test ./internal/plan -run 'BindParams'
	$(GO) test -race -tags stress ./internal/resultcache
	$(GO) test -race -run 'ResultCacheSnapshotPinned|NormalizedAdmissionDigest|PlanCache|PreparedStatement' ./internal/hs2
	$(GO) test -race -run 'PreparedByteIdenticalToAdhoc|HotPathSkipsCompile|ExecuteInsertHammer|ThunderingHerd|WMHistorySharedAcrossLiterals' .

# elevator is the LLAP I/O elevator gate (PR 9): decoded-vector cache
# LRU/eviction-during-fill unit tests, elevator prefetch/dedup/close and
# metadata-cache LRU tests, the acid delete-delta sarg-skip and
# full-stack elevator-vs-synchronous equivalence tests, then the
# end-to-end suite under -race: on/off byte-identity at DOP 1/2/4 over
# delete deltas and sarg-skipped stripes, the observability counters,
# and the concurrent tiny-decoded-cache hammer (evictions racing fills).
elevator:
	$(GO) test ./internal/llap -run 'DecodedCache|QueryVectorView|Elevator|MetadataCache'
	$(GO) test ./internal/acid -run 'DeleteDeltaSargSkipsStripes|ScanWithElevatorMatchesSynchronous'
	$(GO) test -race -count=1 -run 'TestElevatorByteIdentity|TestElevatorObservability|TestElevatorConcurrentTinyCache' .

# hammer is the multi-tenant overload gate: ~200 concurrent sessions
# across two memory-budgeted WM pools (tiny lookups + beyond-memory
# aggregations) under -race, plus the admission accounting invariants,
# queue-timeout/cancel paths and the query-timeout release test. The
# -short variant of the same tests rides every `make check` via the
# race target.
hammer:
	$(GO) test -race -count=1 -run 'AdmissionHammer|QueryTimeoutReleasesAdmission|SessionCloseCancelsQuery|AccountingInvariants|QueueTimeout|QueueDeadline|BoundedQueue|AdmitContextCanceled' ./internal/wm .

# bench reruns the paper figures, the parallel speedup numbers and the
# beyond-memory (spilling) cases. Filter the parallel-speedup and
# beyond-memory cases with CASES, e.g.:
#
#	make bench CASES=sort_topn
#	make bench CASES='order_by|sort_topn'
#	make bench CASES='sort/budget256k'        # BenchmarkBeyondMemory
BENCHRE = $(if $(CASES),(BenchmarkParallelSpeedup|BenchmarkBeyondMemory)/($(CASES)),.)
bench:
	$(GO) test -run xxx -bench '$(BENCHRE)' -benchmem .
