GO ?= go

.PHONY: check build test vet race bench

# check is the CI gate: vet, build, race-test the concurrency-sensitive
# packages, then run the full suite.
check: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./internal/exec/... ./internal/llap/... ./internal/resultcache/...

test:
	$(GO) test ./...

# bench reruns the paper figures and the PR 1 parallel speedup numbers.
bench:
	$(GO) test -run xxx -bench . -benchmem .
