GO ?= go

.PHONY: check build test vet race bench

# check is the CI gate: vet, build, a -race short-test pass over every
# package (catches data races in the parallel scan/agg/join paths and the
# stripe-granular morsel sharing), then the full suite.
check: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

# bench reruns the paper figures and the parallel speedup numbers. Filter
# the parallel-speedup cases with CASES, e.g.:
#
#	make bench CASES=sort_topn
#	make bench CASES='order_by|sort_topn'
BENCHRE = $(if $(CASES),BenchmarkParallelSpeedup/($(CASES)),.)
bench:
	$(GO) test -run xxx -bench '$(BENCHRE)' -benchmem .
