GO ?= go

.PHONY: check build test vet race bench

# check is the CI gate: vet, build, a -race short-test pass over every
# package (catches data races in the parallel scan/agg/join paths and the
# stripe-granular morsel sharing), then the full suite.
check: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

# bench reruns the paper figures and the PR 1 parallel speedup numbers.
bench:
	$(GO) test -run xxx -bench . -benchmem .
