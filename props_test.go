package hive

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// physPlan executes the query and returns the prepared physical plan the
// session recorded for it.
func physPlan(t *testing.T, s *Session, query string) string {
	t.Helper()
	if _, err := s.Exec(query); err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	return s.Internal().LastPhysicalPlan
}

// propsCompare runs one query under properties on and off across DOPs.
// At parallelism 1 both plans are fully deterministic and the outputs must
// match byte for byte — the tentpole's core promise. At higher DOPs morsel
// stealing makes tie order nondeterministic in BOTH plans, so the check is
// the same one the parallelism suite uses: equal sorted line sets, plus an
// exact sort-key sequence when the query has an ORDER BY (tie-permutation
// proof).
func propsCompare(t *testing.T, s *Session, query string, ordCols []int) {
	t.Helper()
	s.SetConf("hive.parallelism", "1")
	s.SetConf("hive.planner.properties", "false")
	base, err := s.Exec(query)
	if err != nil {
		t.Fatalf("baseline %s: %v", query, err)
	}
	s.SetConf("hive.planner.properties", "true")
	got, err := s.Exec(query)
	if err != nil {
		t.Fatalf("props dop=1 %s: %v", query, err)
	}
	if got.String() != base.String() {
		t.Errorf("dop=1 output not byte-identical for %s\n got: %q\nwant: %q", query, got.String(), base.String())
	}
	for _, dop := range []string{"2", "4"} {
		s.SetConf("hive.parallelism", dop)
		for _, props := range []string{"false", "true"} {
			s.SetConf("hive.planner.properties", props)
			res, err := s.Exec(query)
			if err != nil {
				t.Fatalf("props=%s dop=%s %s: %v", props, dop, query, err)
			}
			if got, want := sortedLines(res), sortedLines(base); got != want {
				t.Errorf("props=%s dop=%s %s: result multiset diverges\n got %q\nwant %q", props, dop, query, got, want)
			}
			for _, col := range ordCols {
				if got, want := columnSeq(res, col), columnSeq(base, col); got != want {
					t.Errorf("props=%s dop=%s %s: sort-key sequence diverges\n got %q\nwant %q", props, dop, query, got, want)
				}
			}
		}
	}
	s.SetConf("hive.parallelism", "1")
	s.SetConf("hive.planner.properties", "true")
}

// TestPropsWindowSortElision is payday 1: ORDER BY matching a window's
// (PARTITION BY, ORDER BY) commutes below the window, whose own sort then
// disappears — and under parallelism the pushed sort runs per worker under
// an order-preserving merge, with the window consuming merge output
// directly.
func TestPropsWindowSortElision(t *testing.T) {
	_, s := windowWarehouse(t, 400)
	q := `SELECT g, k, v, rank() OVER (PARTITION BY g ORDER BY k) FROM w ORDER BY g, k`

	plan := physPlan(t, s, q)
	if !strings.Contains(plan, "presorted=1") {
		t.Errorf("window group should be presorted (sort elided):\n%s", plan)
	}
	// The plan must start with the window pipeline, not a coordinator sort.
	if strings.HasPrefix(strings.TrimSpace(plan), "Sort") {
		t.Errorf("enforcer sort survived above the window:\n%s", plan)
	}

	s.SetConf("hive.parallelism", "4")
	plan = physPlan(t, s, q)
	if !strings.Contains(plan, "MergeExchange") || !strings.Contains(plan, "presorted=1") {
		t.Errorf("parallel plan should feed the window from a merge exchange, sort elided:\n%s", plan)
	}
	s.SetConf("hive.parallelism", "1")

	s.SetConf("hive.planner.properties", "false")
	plan = physPlan(t, s, q)
	if strings.Contains(plan, "presorted") {
		t.Errorf("enforcer-everywhere plan should not elide the window sort:\n%s", plan)
	}
	if !strings.HasPrefix(strings.TrimSpace(plan), "Sort") {
		t.Errorf("enforcer-everywhere plan should keep the coordinator sort:\n%s", plan)
	}
	s.SetConf("hive.planner.properties", "true")

	// Byte-identity across DOPs, with ties and NULL order keys in w.
	propsCompare(t, s, q, []int{0, 1})
	// DESC and NULLS-bearing orderings, including shapes where the
	// rewrite must NOT fire (direction mismatch): both plans stay equal.
	propsCompare(t, s, `SELECT g, k, v, rank() OVER (PARTITION BY g ORDER BY k) FROM w ORDER BY g, k DESC`, []int{0, 1})
	propsCompare(t, s, `SELECT g, k, SUM(v) OVER (PARTITION BY g ORDER BY k DESC) FROM w ORDER BY g, k DESC`, []int{0, 1})
	propsCompare(t, s, `SELECT k, v, row_number() OVER (PARTITION BY k ORDER BY v) FROM w ORDER BY k, v`, []int{0, 1})
}

// TestPropsSharedPartitionPass is payday 2: window specs sharing a
// PARTITION BY column set run one partition pass and differ only in the
// per-partition re-sort.
func TestPropsSharedPartitionPass(t *testing.T) {
	_, s := windowWarehouse(t, 400)
	q := `SELECT g, k, v,
	        SUM(v) OVER (PARTITION BY g ORDER BY k),
	        rank() OVER (PARTITION BY g ORDER BY v DESC),
	        COUNT(v) OVER (PARTITION BY k)
	      FROM w`

	plan := physPlan(t, s, q)
	if !strings.Contains(plan, "shared-partition-pass=2(1 passes)") {
		t.Errorf("two PARTITION BY g specs should share one partition pass:\n%s", plan)
	}

	s.SetConf("hive.planner.properties", "false")
	plan = physPlan(t, s, q)
	if strings.Contains(plan, "shared-partition-pass") {
		t.Errorf("enforcer-everywhere plan should not share passes:\n%s", plan)
	}
	s.SetConf("hive.planner.properties", "true")

	// No ORDER BY: emission is arrival order in both modes, so DOP 1 is
	// byte-exact and higher DOPs compare as multisets.
	propsCompare(t, s, q, nil)
	// Shared pass under an ORDER BY that also presorts one of the specs.
	propsCompare(t, s, `SELECT g, k, v,
	        SUM(v) OVER (PARTITION BY g ORDER BY k),
	        AVG(v) OVER (PARTITION BY g ORDER BY v),
	        rank() OVER (PARTITION BY g ORDER BY k DESC)
	      FROM w ORDER BY g, k`, []int{0, 1})
}

// TestPropsPartitionWiseAggAndJoin is payday 3: aggregation and join over
// scans already partitioned on the keys run partition-wise — no stripe
// splitting, key-disjoint partials with an append-only merge for the
// aggregation, per-unit builds with no shared hash table for the join.
func TestPropsPartitionWiseAggAndJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: TPC-DS setup")
	}
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.TinyTPCDS()); err != nil {
		t.Fatal(err)
	}
	s.SetConf("hive.query.results.cache.enabled", "false")
	s.SetConf("hive.optimize.semijoin", "false")

	aggQ := `SELECT ss_sold_date_sk, COUNT(*), SUM(ss_sales_price) FROM store_sales
	         GROUP BY ss_sold_date_sk ORDER BY ss_sold_date_sk`
	joinQ := `SELECT ss_item_sk, ss_ticket_number, sr_item_sk FROM store_sales, store_returns
	          WHERE ss_sold_date_sk = sr_returned_date_sk AND ss_item_sk = sr_item_sk`

	s.SetConf("hive.parallelism", "4")
	plan := physPlan(t, s, aggQ)
	if !strings.Contains(plan, "partition-wise") {
		t.Errorf("group by the partition column should aggregate partition-wise:\n%s", plan)
	}
	plan = physPlan(t, s, joinQ)
	if !strings.Contains(plan, "PartitionJoin") {
		t.Errorf("co-partitioned join should run partition-wise:\n%s", plan)
	}
	if strings.Contains(plan, "shared-build") {
		t.Errorf("partition-wise join should not build a shared table:\n%s", plan)
	}

	s.SetConf("hive.planner.properties", "false")
	plan = physPlan(t, s, aggQ)
	if strings.Contains(plan, "partition-wise") {
		t.Errorf("enforcer-everywhere agg should not be partition-wise:\n%s", plan)
	}
	plan = physPlan(t, s, joinQ)
	if strings.Contains(plan, "PartitionJoin") {
		t.Errorf("enforcer-everywhere join should use the shared build:\n%s", plan)
	}
	s.SetConf("hive.planner.properties", "true")
	s.SetConf("hive.parallelism", "1")

	// Group keys are unique per date, so the ORDER BY output is fully
	// deterministic at every DOP; the join compares as a multiset.
	propsCompare(t, s, aggQ, []int{0})
	propsCompare(t, s, joinQ, nil)
	// Partition-wise placements must not fire for non-covering keys, and
	// results stay equal when they do not.
	propsCompare(t, s, `SELECT ss_item_sk, COUNT(*) FROM store_sales GROUP BY ss_item_sk`, nil)
	// Multi-key grouping that still covers the partition column.
	propsCompare(t, s, `SELECT ss_sold_date_sk, ss_store_sk, SUM(ss_quantity) FROM store_sales
	                    GROUP BY ss_sold_date_sk, ss_store_sk ORDER BY ss_sold_date_sk, ss_store_sk`, []int{0, 1})
}

// TestPropsKnobRestoresEnforcers pins the session knob end to end: the
// same query flips between property-driven and enforcer-everywhere
// physical plans as hive.planner.properties toggles.
func TestPropsKnobRestoresEnforcers(t *testing.T) {
	_, s := windowWarehouse(t, 200)
	q := `SELECT g, k, rank() OVER (PARTITION BY g ORDER BY k) FROM w ORDER BY g, k`
	on := physPlan(t, s, q)
	s.SetConf("hive.planner.properties", "false")
	off := physPlan(t, s, q)
	if on == off {
		t.Fatalf("knob has no effect on the physical plan:\n%s", on)
	}
	if !strings.Contains(on, "presorted") || strings.Contains(off, "presorted") {
		t.Errorf("knob mismatch\non:\n%s\noff:\n%s", on, off)
	}
}
