package hive

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hammerWarehouse builds the multi-tenant fixture: a fact table whose
// aggregation footprint we can measure, a tiny dimension table for the
// interactive tier, and the result cache off so every query really goes
// through admission.
func hammerWarehouse(t *testing.T, rows int, memoryBytes int64) (*Warehouse, *Session) {
	t.Helper()
	wh, err := Open(Config{Executors: 8, MemoryBytes: memoryBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	s := wh.Session()
	s.SetConf("hive.query.results.cache.enabled", "false")
	s.MustExec(`CREATE TABLE facts (k BIGINT, grp INT, v STRING, price DECIMAL(7,2))`)
	s.MustExec(`CREATE TABLE dims (grp INT, name STRING)`)
	for batch := 0; batch < rows/100; batch++ {
		var b strings.Builder
		b.WriteString("INSERT INTO facts VALUES ")
		for i := 0; i < 100; i++ {
			k := batch*100 + i
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, 'val%d', %d.%02d)", (k*7919)%rows, k%13, k%37, k%90, k%100)
		}
		s.MustExec(b.String())
	}
	ins := "INSERT INTO dims VALUES "
	for g := 0; g < 13; g++ {
		if g > 0 {
			ins += ", "
		}
		ins += fmt.Sprintf("(%d, 'group-%d')", g, g)
	}
	s.MustExec(ins)
	return wh, s
}

// TestAdmissionHammer is the PR 6 acceptance test: ~200 sessions across two
// pools — an interactive tier of tiny lookups and a batch tier of
// aggregations whose footprint exceeds the pool's per-query grant — all
// stampeding at once. The warehouse must degrade, not break: zero failed
// queries, heavy queries spill under their admitted budget instead of
// blowing past it, the interactive tier keeps a bounded p99, reservations
// never exceed the configured memory (Reconcile passes mid-flight), and
// every pool's accounting drains to exactly zero afterwards.
func TestAdmissionHammer(t *testing.T) {
	const totalMem = int64(4 << 20)
	nTiny, nHeavy, perSession := 160, 40, 2
	if testing.Short() {
		nTiny, nHeavy = 30, 10
	}
	wh, admin := hammerWarehouse(t, 1200, totalMem)

	// Calibrate: measure the heavy aggregation's unbudgeted footprint, then
	// size the batch pool so each admission's grant is about a third of it —
	// the query must spill to finish, which is exactly the graceful
	// degradation under test.
	heavySQL := `SELECT k, COUNT(*), SUM(price), AVG(grp) FROM facts GROUP BY k ORDER BY k`
	admin.MustExec(heavySQL)
	peak := admin.inner.LastPeakMemoryBytes
	if peak <= 0 {
		t.Fatal("calibration run accounted no peak memory")
	}
	heavyFrac := float64(peak/3) / float64(totalMem)
	if heavyFrac < 0.01 {
		heavyFrac = 0.01
	}
	if heavyFrac > 0.45 {
		heavyFrac = 0.45
	}
	for _, stmt := range []string{
		`CREATE RESOURCE PLAN mt`,
		`CREATE POOL mt.tiny WITH alloc_fraction=0.5, query_parallelism=8, memory_fraction=0.5`,
		fmt.Sprintf(`CREATE POOL mt.heavy WITH alloc_fraction=0.5, query_parallelism=2, memory_fraction=%.4f`, heavyFrac),
		`CREATE APPLICATION MAPPING dashboard IN mt TO tiny`,
		`ALTER PLAN mt SET DEFAULT POOL = heavy`,
		`ALTER RESOURCE PLAN mt ENABLE ACTIVATE`,
	} {
		admin.MustExec(stmt)
	}
	mgr := wh.Server().WorkloadManager()
	if mgr == nil {
		t.Fatal("no workload manager after plan activation")
	}
	// The stampede far exceeds any sane queue bound; the bounded-queue
	// degradation paths are unit-tested, here every query must complete.
	mgr.QueueLimit = (nTiny + nHeavy) * perSession

	var (
		start      = make(chan struct{})
		wg         sync.WaitGroup
		errMu      sync.Mutex
		errs       []error
		tinyMu     sync.Mutex
		tinyTimes  []time.Duration
		heavyDone  atomic.Int64
		heavySpill atomic.Int64
	)
	fail := func(err error) {
		errMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, err)
		}
		errMu.Unlock()
	}
	for w := 0; w < nTiny; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := wh.Session()
			defer s.Close()
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.SetUser(fmt.Sprintf("analyst%d", w), "dashboard")
			<-start
			for i := 0; i < perSession; i++ {
				q := fmt.Sprintf(`SELECT name FROM dims WHERE grp = %d`, (w+i)%13)
				t0 := time.Now()
				if _, err := s.Query(q); err != nil {
					fail(fmt.Errorf("tiny session %d: %v", w, err))
					return
				}
				d := time.Since(t0)
				tinyMu.Lock()
				tinyTimes = append(tinyTimes, d)
				tinyMu.Unlock()
			}
		}(w)
	}
	for w := 0; w < nHeavy; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := wh.Session()
			defer s.Close()
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.SetUser(fmt.Sprintf("batch%d", w), "etl_app")
			<-start
			for i := 0; i < perSession; i++ {
				if _, err := s.Query(heavySQL); err != nil {
					fail(fmt.Errorf("heavy session %d: %v", w, err))
					return
				}
				heavyDone.Add(1)
				heavySpill.Add(s.inner.LastSpilledBytes)
			}
		}(w)
	}
	// Invariant monitor: accounting must reconcile while the hammer runs,
	// not just after it drains.
	stop := make(chan struct{})
	var monErr error
	var monWg sync.WaitGroup
	monWg.Add(1)
	go func() {
		defer monWg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if err := mgr.Reconcile(); err != nil && monErr == nil {
					monErr = err
					return
				}
			}
		}
	}()
	wallStart := time.Now()
	close(start)
	wg.Wait()
	close(stop)
	monWg.Wait()

	if monErr != nil {
		t.Fatalf("accounting invariant broken mid-hammer: %v", monErr)
	}
	for _, err := range errs {
		t.Error(err)
	}
	if len(errs) > 0 {
		t.Fatalf("%d sessions failed under overload", len(errs))
	}
	if got, want := heavyDone.Load(), int64(nHeavy*perSession); got != want {
		t.Errorf("heavy tier starved: %d of %d aggregations completed", got, want)
	}
	if heavySpill.Load() == 0 {
		t.Error("no heavy query spilled: admission budgets were not enforced")
	}
	// Interactive tier latency: a dimension lookup is microseconds of work;
	// even queued behind its whole tier under -race it must stay far below
	// a human-visible stall.
	sort.Slice(tinyTimes, func(i, j int) bool { return tinyTimes[i] < tinyTimes[j] })
	if p99 := tinyTimes[len(tinyTimes)*99/100]; p99 > 15*time.Second {
		t.Errorf("tiny tier p99 %v: interactive tier starved under heavy load", p99)
	}
	// Reservations stayed within the configured memory plus the bounded
	// degraded-admission overdraft (budget/8 per slot, both pools).
	if peak := mgr.GlobalPeakBytes(); peak > 2*totalMem {
		t.Errorf("global reservation peak %d exceeds configured %d beyond degradation slack", peak, totalMem)
	}
	// Everything drains to zero: no leaked slots, loans or reservations.
	for _, pool := range []string{"tiny", "heavy"} {
		st, err := mgr.Stats(pool)
		if err != nil {
			t.Fatal(err)
		}
		if st.Running != 0 || st.Queued != 0 || st.ExecInUse != 0 || st.ExecLent != 0 || st.MemInUse != 0 || st.MemLent != 0 {
			t.Errorf("pool %s did not drain to zero: %+v", pool, st)
		}
	}
	if err := mgr.Reconcile(); err != nil {
		t.Error(err)
	}
	if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
		t.Errorf("leaked scratch files: %v", leaks)
	}
	t.Logf("hammer: %d sessions (%d tiny / %d heavy), %d queries, wall %v",
		nTiny+nHeavy, nTiny, nHeavy, len(tinyTimes)+int(heavyDone.Load()), time.Since(wallStart))
	t.Logf("tiny tier: p50 %v p99 %v max %v", tinyTimes[len(tinyTimes)/2],
		tinyTimes[len(tinyTimes)*99/100], tinyTimes[len(tinyTimes)-1])
	t.Logf("heavy tier: %d aggs, %d bytes spilled (per-query grant ~%d of %d peak)",
		heavyDone.Load(), heavySpill.Load(), int64(heavyFrac*float64(totalMem))/2, peak)
	t.Logf("memory: global reservation peak %d of %d configured", mgr.GlobalPeakBytes(), totalMem)
}

// TestQueryTimeoutReleasesAdmission wires hive.query.timeout end to end: a
// query that blows its deadline must come back with a cancellation error
// and leave nothing behind — no admission slot, no pool memory
// reservation, no scratch files — and the next query on the session must
// run normally.
func TestQueryTimeoutReleasesAdmission(t *testing.T) {
	wh, s := hammerWarehouse(t, 1500, 64<<20)
	for _, stmt := range []string{
		`CREATE RESOURCE PLAN rt`,
		`CREATE POOL rt.work WITH alloc_fraction=1.0, query_parallelism=2, memory_fraction=1.0`,
		`ALTER PLAN rt SET DEFAULT POOL = work`,
		`ALTER RESOURCE PLAN rt ENABLE ACTIVATE`,
	} {
		s.MustExec(stmt)
	}
	mgr := wh.Server().WorkloadManager()

	// ~170k joined rows sorted: far beyond a 30ms deadline.
	s.SetConf("hive.query.timeout", "30")
	_, err := s.Query(`SELECT a.k, b.k FROM facts a, facts b WHERE a.grp = b.grp ORDER BY a.k, b.k`)
	if err == nil {
		t.Fatal("query finished under a 30ms deadline; expected timeout")
	}
	if !strings.Contains(err.Error(), "canceled") && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("timeout surfaced as %v; want a cancellation error", err)
	}
	st, serr := mgr.Stats("work")
	if serr != nil {
		t.Fatal(serr)
	}
	if st.Running != 0 || st.Queued != 0 || st.ExecInUse != 0 || st.MemInUse != 0 {
		t.Errorf("timed-out query leaked admission state: %+v", st)
	}
	if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
		t.Errorf("timed-out query leaked scratch files: %v", leaks)
	}
	if err := mgr.Reconcile(); err != nil {
		t.Error(err)
	}
	// The released slot and reservation must be usable immediately.
	s.SetConf("hive.query.timeout", "0")
	if _, err := s.Query(`SELECT COUNT(*) FROM facts`); err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
}

// TestSessionCloseCancelsQuery covers the disconnect path: closing a
// session while its query runs cancels the query and releases its
// admission.
func TestSessionCloseCancelsQuery(t *testing.T) {
	wh, s := hammerWarehouse(t, 1500, 64<<20)
	for _, stmt := range []string{
		`CREATE RESOURCE PLAN cx`,
		`CREATE POOL cx.work WITH alloc_fraction=1.0, query_parallelism=2, memory_fraction=1.0`,
		`ALTER PLAN cx SET DEFAULT POOL = work`,
		`ALTER RESOURCE PLAN cx ENABLE ACTIVATE`,
	} {
		s.MustExec(stmt)
	}
	victim := wh.Session()
	victim.SetConf("hive.query.results.cache.enabled", "false")
	done := make(chan error, 1)
	go func() {
		_, err := victim.Query(`SELECT a.k, b.k FROM facts a, facts b WHERE a.grp = b.grp ORDER BY a.k, b.k`)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	victim.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Log("query finished before the close landed; cancellation not exercised")
		} else if !strings.Contains(err.Error(), "canceled") {
			t.Errorf("close surfaced as %v; want a cancellation error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query did not stop after session close")
	}
	mgr := wh.Server().WorkloadManager()
	st, err := mgr.Stats("work")
	if err != nil {
		t.Fatal(err)
	}
	if st.Running != 0 || st.MemInUse != 0 {
		t.Errorf("closed session leaked admission state: %+v", st)
	}
}
