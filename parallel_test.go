package hive

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestParallelismEndToEnd runs TPC-DS-shaped queries through the full
// HS2 → DAG → LLAP path at several hive.parallelism settings and checks
// the result multiset matches serial execution. This exercises morsel
// scans over the partitioned fact table, two-phase aggregation, shared
// partitioned join builds and semijoin reducers under real executor-slot
// accounting.
func TestParallelismEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping TPC-DS setup; TestUnpartitionedStripeParallelism covers the parallel paths")
	}
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.TinyTPCDS()); err != nil {
		t.Fatal(err)
	}
	s.SetConf("hive.query.results.cache.enabled", "false")

	queries := []string{
		`SELECT ss_sold_date_sk, COUNT(*), SUM(ss_sales_price) FROM store_sales GROUP BY ss_sold_date_sk`,
		`SELECT i_category, SUM(ss_sales_price), AVG(ss_quantity) FROM store_sales, item
		   WHERE ss_item_sk = i_item_sk GROUP BY i_category`,
		`SELECT COUNT(DISTINCT ss_customer_sk) FROM store_sales`,
		`SELECT ss_customer_sk, SUM(ss_sales_price) AS s FROM store_sales, item
		   WHERE ss_item_sk = i_item_sk AND i_category = 'Music' AND i_brand = 'brandA'
		   GROUP BY ss_customer_sk ORDER BY s DESC LIMIT 10`,
		`SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 8 AND NOT EXISTS
		   (SELECT 1 FROM store_returns WHERE sr_item_sk = ss_item_sk)`,
		`SELECT ss_ticket_number, ss_sales_price FROM store_sales ORDER BY ss_ticket_number`,
	}
	// ORDER BY queries additionally verify ordering against serial: the
	// sort-column sequence must match exactly (it is tie-permutation
	// proof — equal multisets correctly sorted render the same key
	// sequence even when tied rows interleave differently across runs).
	ordCol := map[int]int{3: 1, 5: 0}
	for qi, q := range queries {
		s.SetConf("hive.parallelism", "1")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		want := sortedLines(base)
		for _, dop := range []string{"2", "4", "8"} {
			s.SetConf("hive.parallelism", dop)
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("dop=%s %s: %v", dop, q, err)
			}
			if got := sortedLines(res); got != want {
				t.Errorf("dop=%s %s:\n got %q\nwant %q", dop, q, got, want)
			}
			if col, ok := ordCol[qi]; ok {
				if got, want := columnSeq(res, col), columnSeq(base, col); got != want {
					t.Errorf("dop=%s %s: sort-key sequence diverges from serial\n got %q\nwant %q", dop, q, got, want)
				}
			}
		}
	}
}

// columnSeq renders one output column in row order.
func columnSeq(r *Result, col int) string {
	vals := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		vals[i] = row[col].String()
	}
	return strings.Join(vals, ",")
}

func sortedLines(r *Result) string {
	lines := strings.Split(r.String(), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestUnpartitionedStripeParallelism covers the PR 2 tentpole end to end:
// an unpartitioned ACID table is a single directory split, which used to
// scan serially at any DOP. With stripe-granular morsels the LLAP path
// fans it out across executor slots, and results must stay byte-identical
// to the serial MR and container paths even while delete deltas are live.
func TestUnpartitionedStripeParallelism(t *testing.T) {
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	s.MustExec(`CREATE TABLE flat (k BIGINT, v STRING, q INT)`)
	// Multiple insert transactions -> multiple delta files to split.
	for batch := 0; batch < 8; batch++ {
		ins := "INSERT INTO flat VALUES "
		for i := 0; i < 100; i++ {
			k := batch*100 + i
			if i > 0 {
				ins += ", "
			}
			ins += fmt.Sprintf("(%d, 'v%d', %d)", k, k, k%10)
		}
		s.MustExec(ins)
	}
	// Active delete deltas over committed data.
	s.MustExec(`DELETE FROM flat WHERE q = 3`)
	s.MustExec(`DELETE FROM flat WHERE k >= 700 AND q = 5`)
	s.SetConf("hive.query.results.cache.enabled", "false")

	queries := []string{
		`SELECT k, v, q FROM flat`,
		`SELECT q, COUNT(*), SUM(k) FROM flat GROUP BY q`,
		`SELECT COUNT(*), MIN(k), MAX(k) FROM flat WHERE q <> 4`,
	}
	type variant struct {
		name string
		conf map[string]string
	}
	variants := []variant{
		{"mr", map[string]string{"hive.execution.mode": "mr", "hive.llap.enabled": "false"}},
		{"container", map[string]string{"hive.execution.mode": "container", "hive.llap.enabled": "false"}},
		{"llap_dop4", map[string]string{"hive.execution.mode": "llap", "hive.llap.enabled": "true", "hive.parallelism": "4"}},
		{"llap_dop8_target3", map[string]string{"hive.execution.mode": "llap", "hive.llap.enabled": "true", "hive.parallelism": "8", "hive.split.target.stripes": "3"}},
	}
	for _, q := range queries {
		s.SetConf("hive.execution.mode", "llap")
		s.SetConf("hive.llap.enabled", "true")
		s.SetConf("hive.parallelism", "1")
		s.SetConf("hive.split.target.stripes", "1")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial llap %s: %v", q, err)
		}
		want := sortedLines(base)
		for _, v := range variants {
			for k, val := range v.conf {
				s.SetConf(k, val)
			}
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("%s %s: %v", v.name, q, err)
			}
			if got := sortedLines(res); got != want {
				t.Errorf("%s %s: results diverge from serial\n got %q\nwant %q", v.name, q, got, want)
			}
		}
	}
}

// TestParallelOrderByMatchesSerial is the PR 3 ordering regression: ORDER
// BY and ORDER BY ... LIMIT results must be byte-identical between serial
// execution (hive.parallelism=1) and parallel runs at DOP 1/2/4/8 — in
// output order, not as a multiset — across NULL ordering, DESC keys and
// tied keys. Queries assert stable-order columns only where the sort keys
// are unique per row (tie order across dynamically assigned runs is
// legitimately nondeterministic, so the tie query projects only its key).
// Disabling hive.sort.parallel must also reproduce serial output.
func TestParallelOrderByMatchesSerial(t *testing.T) {
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	s.MustExec(`CREATE TABLE ord (k BIGINT, nv BIGINT, grp INT, tag STRING)`)
	// Several insert transactions -> several delta files -> stripe morsels.
	for batch := 0; batch < 6; batch++ {
		ins := "INSERT INTO ord VALUES "
		for i := 0; i < 80; i++ {
			k := batch*80 + i
			if i > 0 {
				ins += ", "
			}
			nv := fmt.Sprint(k % 13)
			if k%7 == 0 {
				nv = "NULL" // NULLs interleaved through every run
			}
			ins += fmt.Sprintf("(%d, %s, %d, 't%04d')", k, nv, k%5, k)
		}
		s.MustExec(ins)
	}
	s.SetConf("hive.query.results.cache.enabled", "false")

	queries := []string{
		// Unique key, both directions.
		`SELECT k, tag FROM ord ORDER BY k`,
		`SELECT k, tag FROM ord ORDER BY k DESC`,
		// NULL ordering under ASC and DESC, unique tiebreak.
		`SELECT nv, k FROM ord ORDER BY nv, k`,
		`SELECT nv, k FROM ord ORDER BY nv DESC, k DESC`,
		// Ties on grp resolved by a unique column.
		`SELECT grp, k FROM ord ORDER BY grp, k DESC`,
		// Pure-tie query: only the key is projected, so equal rows render
		// identically and the ordered output is still byte-comparable.
		`SELECT grp FROM ord ORDER BY grp`,
		// TopN: limits pushed into per-worker runs.
		`SELECT k, tag FROM ord ORDER BY k DESC LIMIT 7`,
		`SELECT nv, k FROM ord ORDER BY nv, k LIMIT 9`,
		`SELECT k FROM ord ORDER BY k LIMIT 0`,
	}
	for _, q := range queries {
		s.SetConf("hive.parallelism", "1")
		s.SetConf("hive.sort.parallel", "true")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		want := base.String()
		for _, dop := range []string{"1", "2", "4", "8"} {
			s.SetConf("hive.parallelism", dop)
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("dop=%s %s: %v", dop, q, err)
			}
			if got := res.String(); got != want {
				t.Errorf("dop=%s %s: ordered output diverges from serial\n got %q\nwant %q", dop, q, got, want)
			}
		}
		s.SetConf("hive.parallelism", "4")
		s.SetConf("hive.sort.parallel", "false")
		res, err := s.Exec(q)
		if err != nil {
			t.Fatalf("sort.parallel=false %s: %v", q, err)
		}
		if got := res.String(); got != want {
			t.Errorf("sort.parallel=false %s: output diverges\n got %q\nwant %q", q, got, want)
		}
	}
}

// TestParallelismBoundedBySlots shrinks the executor pool to one slot and
// confirms parallel queries still complete (the coordinator always owns an
// implicit slot) and produce correct results.
func TestParallelismBoundedBySlots(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping TPC-DS setup")
	}
	wh, err := Open(Config{Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.TinyTPCDS()); err != nil {
		t.Fatal(err)
	}
	s.SetConf("hive.query.results.cache.enabled", "false")
	s.SetConf("hive.parallelism", "8")
	res, err := s.Exec(`SELECT COUNT(*), SUM(ss_quantity) FROM store_sales`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "2000|") {
		t.Fatalf("unexpected result %q", res.String())
	}
}
