package hive

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestParallelismEndToEnd runs TPC-DS-shaped queries through the full
// HS2 → DAG → LLAP path at several hive.parallelism settings and checks
// the result multiset matches serial execution. This exercises morsel
// scans over the partitioned fact table, two-phase aggregation, shared
// partitioned join builds and semijoin reducers under real executor-slot
// accounting.
func TestParallelismEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping TPC-DS setup; TestUnpartitionedStripeParallelism covers the parallel paths")
	}
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.TinyTPCDS()); err != nil {
		t.Fatal(err)
	}
	s.SetConf("hive.query.results.cache.enabled", "false")

	queries := []string{
		`SELECT ss_sold_date_sk, COUNT(*), SUM(ss_sales_price) FROM store_sales GROUP BY ss_sold_date_sk`,
		`SELECT i_category, SUM(ss_sales_price), AVG(ss_quantity) FROM store_sales, item
		   WHERE ss_item_sk = i_item_sk GROUP BY i_category`,
		`SELECT COUNT(DISTINCT ss_customer_sk) FROM store_sales`,
		`SELECT ss_customer_sk, SUM(ss_sales_price) AS s FROM store_sales, item
		   WHERE ss_item_sk = i_item_sk AND i_category = 'Music' AND i_brand = 'brandA'
		   GROUP BY ss_customer_sk ORDER BY s DESC LIMIT 10`,
		`SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 8 AND NOT EXISTS
		   (SELECT 1 FROM store_returns WHERE sr_item_sk = ss_item_sk)`,
	}
	for _, q := range queries {
		s.SetConf("hive.parallelism", "1")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		want := sortedLines(base)
		for _, dop := range []string{"2", "4", "8"} {
			s.SetConf("hive.parallelism", dop)
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("dop=%s %s: %v", dop, q, err)
			}
			if got := sortedLines(res); got != want {
				t.Errorf("dop=%s %s:\n got %q\nwant %q", dop, q, got, want)
			}
		}
	}
}

func sortedLines(r *Result) string {
	lines := strings.Split(r.String(), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestUnpartitionedStripeParallelism covers the PR 2 tentpole end to end:
// an unpartitioned ACID table is a single directory split, which used to
// scan serially at any DOP. With stripe-granular morsels the LLAP path
// fans it out across executor slots, and results must stay byte-identical
// to the serial MR and container paths even while delete deltas are live.
func TestUnpartitionedStripeParallelism(t *testing.T) {
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	s.MustExec(`CREATE TABLE flat (k BIGINT, v STRING, q INT)`)
	// Multiple insert transactions -> multiple delta files to split.
	for batch := 0; batch < 8; batch++ {
		ins := "INSERT INTO flat VALUES "
		for i := 0; i < 100; i++ {
			k := batch*100 + i
			if i > 0 {
				ins += ", "
			}
			ins += fmt.Sprintf("(%d, 'v%d', %d)", k, k, k%10)
		}
		s.MustExec(ins)
	}
	// Active delete deltas over committed data.
	s.MustExec(`DELETE FROM flat WHERE q = 3`)
	s.MustExec(`DELETE FROM flat WHERE k >= 700 AND q = 5`)
	s.SetConf("hive.query.results.cache.enabled", "false")

	queries := []string{
		`SELECT k, v, q FROM flat`,
		`SELECT q, COUNT(*), SUM(k) FROM flat GROUP BY q`,
		`SELECT COUNT(*), MIN(k), MAX(k) FROM flat WHERE q <> 4`,
	}
	type variant struct {
		name string
		conf map[string]string
	}
	variants := []variant{
		{"mr", map[string]string{"hive.execution.mode": "mr", "hive.llap.enabled": "false"}},
		{"container", map[string]string{"hive.execution.mode": "container", "hive.llap.enabled": "false"}},
		{"llap_dop4", map[string]string{"hive.execution.mode": "llap", "hive.llap.enabled": "true", "hive.parallelism": "4"}},
		{"llap_dop8_target3", map[string]string{"hive.execution.mode": "llap", "hive.llap.enabled": "true", "hive.parallelism": "8", "hive.split.target.stripes": "3"}},
	}
	for _, q := range queries {
		s.SetConf("hive.execution.mode", "llap")
		s.SetConf("hive.llap.enabled", "true")
		s.SetConf("hive.parallelism", "1")
		s.SetConf("hive.split.target.stripes", "1")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial llap %s: %v", q, err)
		}
		want := sortedLines(base)
		for _, v := range variants {
			for k, val := range v.conf {
				s.SetConf(k, val)
			}
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("%s %s: %v", v.name, q, err)
			}
			if got := sortedLines(res); got != want {
				t.Errorf("%s %s: results diverge from serial\n got %q\nwant %q", v.name, q, got, want)
			}
		}
	}
}

// TestParallelismBoundedBySlots shrinks the executor pool to one slot and
// confirms parallel queries still complete (the coordinator always owns an
// implicit slot) and produce correct results.
func TestParallelismBoundedBySlots(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping TPC-DS setup")
	}
	wh, err := Open(Config{Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	if err := bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.TinyTPCDS()); err != nil {
		t.Fatal(err)
	}
	s.SetConf("hive.query.results.cache.enabled", "false")
	s.SetConf("hive.parallelism", "8")
	res, err := s.Exec(`SELECT COUNT(*), SUM(ss_quantity) FROM store_sales`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.String(), "2000|") {
		t.Fatalf("unexpected result %q", res.String())
	}
}
