package hive

import (
	"strings"
	"sync"
	"testing"
)

// spoolQueries repeat a subtree so the shared-work optimizer inserts a
// Spool; the self-join shares the scan, the derived-table join shares a
// whole aggregate.
var spoolQueries = []string{
	`SELECT a.k, b.grp, b.v FROM facts a, facts b WHERE a.k = b.k`,
	`SELECT a.grp, a.c, b.c FROM (SELECT grp, COUNT(*) AS c FROM facts GROUP BY grp) a
	   JOIN (SELECT grp, COUNT(*) AS c FROM facts GROUP BY grp) b ON a.grp = b.grp`,
}

// TestSpoolSharedParallel checks spooled subtrees feeding parallel worker
// pipelines: single-flight materialization, clones splitting the published
// content through the shared cursor, and results equal to serial.
func TestSpoolSharedParallel(t *testing.T) {
	_, s := spillWarehouse(t, 500)
	for _, q := range spoolQueries {
		s.SetConf("hive.parallelism", "1")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		if !strings.Contains(s.inner.LastPlan, "Spool") {
			t.Fatalf("%s: plan has no Spool, shared-work not exercised:\n%s", q, s.inner.LastPlan)
		}
		for _, dop := range []string{"2", "4", "8"} {
			s.SetConf("hive.parallelism", dop)
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("dop=%s %s: %v", dop, q, err)
			}
			if sortedLines(res) != sortedLines(base) {
				t.Errorf("dop=%s %s: parallel spool results diverge from serial", dop, q)
			}
		}
		// The knob must force spooled subtrees back onto serial pipelines
		// and still produce the same result.
		s.SetConf("hive.parallelism", "4")
		s.SetConf("hive.spool.parallel", "false")
		res, err := s.Exec(q)
		if err != nil {
			t.Fatalf("spool.parallel=false %s: %v", q, err)
		}
		if sortedLines(res) != sortedLines(base) {
			t.Errorf("spool.parallel=false %s: results diverge", q)
		}
		s.SetConf("hive.spool.parallel", "true")
	}
}

// TestSpoolSpillEquivalence is the budgeted-vs-unbudgeted property for the
// spool replay buffer: with a tiny budget the materialization flushes to
// run files, and every consumer's replay must reproduce the unbudgeted
// result exactly. The ORDER BY wrapper pins a total order so the
// comparison is byte-wise.
func TestSpoolSpillEquivalence(t *testing.T) {
	wh, s := spillWarehouse(t, 500)
	queries := []string{
		`SELECT a.k, b.grp, b.v FROM facts a, facts b WHERE a.k = b.k ORDER BY a.k, b.grp, b.v`,
		`SELECT a.grp, a.c, b.c FROM (SELECT grp, COUNT(*) AS c FROM facts GROUP BY grp) a
		   JOIN (SELECT grp, COUNT(*) AS c FROM facts GROUP BY grp) b ON a.grp = b.grp
		   ORDER BY a.grp`,
	}
	for _, q := range queries {
		for _, dop := range []string{"1", "4"} {
			s.SetConf("hive.parallelism", dop)
			s.SetConf("hive.query.max.memory", "0")
			base, err := s.Exec(q)
			if err != nil {
				t.Fatalf("unbudgeted dop=%s %s: %v", dop, q, err)
			}
			s.SetConf("hive.query.max.memory", "16384")
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("budget=16K dop=%s %s: %v", dop, q, err)
			}
			if res.String() != base.String() {
				t.Errorf("dop=%s %s: budgeted spool output diverges byte-wise", dop, q)
			}
			if strings.Contains(q, "a.k = b.k") && s.inner.LastSpilledBytes == 0 {
				t.Errorf("dop=%s %s: 16K budget did not spill", dop, q)
			}
			if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
				t.Fatalf("dop=%s %s: leaked scratch files: %v", dop, q, leaks)
			}
		}
	}
	s.SetConf("hive.query.max.memory", "0")
}

// TestSpoolSharedParallelRace hammers one spool with concurrent worker
// consumers across two sessions at DOP 8 and a tiny budget; the assertions
// are in the -race detector (single-flight materialization, immutable
// publication, shared-cursor splitting) and the result comparison.
func TestSpoolSharedParallelRace(t *testing.T) {
	wh, s := spillWarehouse(t, 400)
	q := `SELECT a.k, b.grp, b.v FROM facts a, facts b WHERE a.k = b.k`
	s.SetConf("hive.parallelism", "1")
	base, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedLines(base)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses := wh.Session()
			ses.SetConf("hive.query.results.cache.enabled", "false")
			ses.SetConf("hive.parallelism", "8")
			ses.SetConf("hive.query.max.memory", "16384")
			for i := 0; i < 3; i++ {
				res, err := ses.Exec(q)
				if err != nil {
					t.Errorf("parallel spool query: %v", err)
					return
				}
				if sortedLines(res) != want {
					t.Error("parallel spool results diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
		t.Fatalf("leaked scratch files: %v", leaks)
	}
}
