// ACID warehouse example (paper §3): row-level UPDATE, DELETE and MERGE
// over a partitioned table with snapshot isolation, plus a materialized
// view that is rewritten into queries and maintained after changes (§4.4).
package main

import (
	"fmt"
	"log"

	hive "repro"
)

func main() {
	wh, err := hive.Open(hive.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()

	s.MustExec(`CREATE TABLE accounts (id BIGINT, owner STRING, balance DECIMAL(10,2))`)
	s.MustExec(`INSERT INTO accounts VALUES (1,'ann',100.00), (2,'bob',250.00), (3,'carol',75.00)`)

	// Row-level DML (update = delete + insert in the delta layout).
	s.MustExec(`UPDATE accounts SET balance = balance + 50.00 WHERE owner = 'ann'`)
	s.MustExec(`DELETE FROM accounts WHERE owner = 'carol'`)

	// MERGE upserts a change feed in one statement.
	s.MustExec(`CREATE TABLE changes (id BIGINT, owner STRING, balance DECIMAL(10,2))`)
	s.MustExec(`INSERT INTO changes VALUES (2,'bob',300.00), (4,'dave',10.00)`)
	s.MustExec(`MERGE INTO accounts a USING changes c ON a.id = c.id
		WHEN MATCHED THEN UPDATE SET balance = c.balance
		WHEN NOT MATCHED THEN INSERT VALUES (c.id, c.owner, c.balance)`)

	fmt.Println("accounts after DML:")
	fmt.Println(s.MustExec(`SELECT id, owner, balance FROM accounts ORDER BY id`))

	// A materialized view answers the aggregate; watch the rewrite flag.
	s.MustExec(`CREATE MATERIALIZED VIEW totals AS
		SELECT owner, SUM(balance) AS total, COUNT(*) AS n FROM accounts GROUP BY owner`)
	res := s.MustExec(`SELECT owner, SUM(balance) FROM accounts GROUP BY owner ORDER BY owner`)
	fmt.Printf("answered from MV: %v\n%s\n", s.Internal().LastRewriteUsedMV, res)

	// New data makes the view stale; REBUILD refreshes it.
	s.MustExec(`INSERT INTO accounts VALUES (5,'ann',1.00)`)
	s.MustExec(`ALTER MATERIALIZED VIEW totals REBUILD`)
	res = s.MustExec(`SELECT owner, SUM(balance) FROM accounts GROUP BY owner ORDER BY owner`)
	fmt.Printf("after rebuild, from MV: %v\n%s\n", s.Internal().LastRewriteUsedMV, res)
}
