// Federation example (paper §6): declare a table stored in the embedded
// Druid cluster, ingest through Hive, and watch the optimizer push a full
// groupBy + sort + limit into a Druid JSON query over HTTP (Figure 6).
package main

import (
	"fmt"
	"log"

	hive "repro"
)

func main() {
	wh, err := hive.Open(hive.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	fmt.Println("embedded druid at:", wh.DruidURL())

	s.MustExec(`CREATE EXTERNAL TABLE druid_table_1 (
		__time TIMESTAMP, d1 STRING, m1 DOUBLE
	) STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
	TBLPROPERTIES ('druid.datasource' = 'my_druid_source')`)

	s.MustExec(`INSERT INTO druid_table_1 VALUES
		(CAST('2017-03-01 00:00:00' AS timestamp), 'alpha', 10.0),
		(CAST('2017-06-02 00:00:00' AS timestamp), 'beta',   5.5),
		(CAST('2018-01-03 00:00:00' AS timestamp), 'alpha',  7.25),
		(CAST('2018-09-04 00:00:00' AS timestamp), 'gamma',  1.0)`)

	// The paper's Figure 6 query: group, aggregate, order, limit — all
	// pushed to Druid as one JSON groupBy query.
	res := s.MustExec(`SELECT d1, SUM(m1) AS total
		FROM druid_table_1 GROUP BY d1 ORDER BY total DESC LIMIT 10`)
	fmt.Println("druid groupBy result:")
	fmt.Println(res)
	fmt.Println("\nplan (note the ForeignScan with generated JSON):")
	fmt.Println(s.Internal().LastPlan)
}
