// Quickstart: boot an embedded warehouse, create a partitioned ACID table,
// load data, and run an analytic query.
package main

import (
	"fmt"
	"log"

	hive "repro"
)

func main() {
	wh, err := hive.Open(hive.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()

	s.MustExec(`CREATE TABLE store_sales (
		item_sk BIGINT, quantity INT, sales_price DECIMAL(7,2)
	) PARTITIONED BY (sold_date_sk INT)`)
	s.MustExec(`INSERT INTO store_sales PARTITION (sold_date_sk=1) VALUES
		(1, 2, 9.99), (2, 1, 19.99), (1, 5, 9.99)`)
	s.MustExec(`INSERT INTO store_sales PARTITION (sold_date_sk=2) VALUES
		(2, 3, 18.50), (3, 1, 4.25)`)

	res := s.MustExec(`SELECT item_sk, SUM(quantity * sales_price) AS revenue
		FROM store_sales GROUP BY item_sk ORDER BY revenue DESC`)
	fmt.Println("revenue by item:")
	fmt.Println(res)

	// Partition pruning: only the sold_date_sk=2 directory is read.
	res = s.MustExec(`SELECT COUNT(*) FROM store_sales WHERE sold_date_sk = 2`)
	fmt.Println("rows on day 2:", res)

	// Intra-query parallelism: LLAP fragments fan out over executor
	// slots, with partitions scanned morsel-style by parallel workers.
	// The default is the machine's CPU count; tune it per session.
	s.SetConf("hive.parallelism", "4")
	res = s.MustExec(`SELECT sold_date_sk, SUM(quantity) FROM store_sales
		GROUP BY sold_date_sk ORDER BY sold_date_sk`)
	fmt.Println("quantity by day (parallel):")
	fmt.Println(res)
}
