// Workload management example (paper §5.2): the resource plan from the
// paper, verbatim — pools, a downgrade trigger, an application mapping —
// then queries admitted under it.
package main

import (
	"fmt"
	"log"

	hive "repro"
)

func main() {
	wh, err := hive.Open(hive.Config{Executors: 16, MemoryBytes: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()

	for _, stmt := range []string{
		`CREATE RESOURCE PLAN daytime`,
		`CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=5, memory_fraction=0.7`,
		`CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20, memory_fraction=0.3`,
		`CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl`,
		`ADD RULE downgrade TO bi`,
		`CREATE APPLICATION MAPPING visualization_app IN daytime TO bi`,
		`ALTER PLAN daytime SET DEFAULT POOL = etl`,
		`ALTER RESOURCE PLAN daytime ENABLE ACTIVATE`,
	} {
		s.MustExec(stmt)
		fmt.Println("ok:", stmt)
	}

	s.MustExec(`CREATE TABLE events (id BIGINT, kind STRING)`)
	s.MustExec(`INSERT INTO events VALUES (1,'click'), (2,'view'), (3,'click')`)

	// Queries from the BI application land in the bi pool (80% of
	// executors, 5 concurrent); everything else defaults to etl.
	s.SetUser("analyst", "visualization_app")
	res := s.MustExec(`SELECT kind, COUNT(*) FROM events GROUP BY kind ORDER BY kind`)
	fmt.Println("\nBI query result (admitted via pool bi):")
	fmt.Println(res)

	// With Config.MemoryBytes set, each pool also holds a memory budget
	// (memory_fraction share) that admission reserves estimated peaks
	// against; Stats exposes the full accounting.
	mgr := wh.Server().WorkloadManager()
	for _, pool := range []string{"bi", "etl"} {
		st, _ := mgr.Stats(pool)
		fmt.Printf("\npool %s: %d running, %d/%d executors in use, %d of %d budget bytes reserved\n",
			pool, st.Running, st.ExecInUse, st.Executors, st.MemInUse, st.MemBudget)
	}
}
