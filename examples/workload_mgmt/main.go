// Workload management example (paper §5.2): the resource plan from the
// paper, verbatim — pools, a downgrade trigger, an application mapping —
// then queries admitted under it.
package main

import (
	"fmt"
	"log"

	hive "repro"
)

func main() {
	wh, err := hive.Open(hive.Config{Executors: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()

	for _, stmt := range []string{
		`CREATE RESOURCE PLAN daytime`,
		`CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=5`,
		`CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20`,
		`CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl`,
		`ADD RULE downgrade TO bi`,
		`CREATE APPLICATION MAPPING visualization_app IN daytime TO bi`,
		`ALTER PLAN daytime SET DEFAULT POOL = etl`,
		`ALTER RESOURCE PLAN daytime ENABLE ACTIVATE`,
	} {
		s.MustExec(stmt)
		fmt.Println("ok:", stmt)
	}

	s.MustExec(`CREATE TABLE events (id BIGINT, kind STRING)`)
	s.MustExec(`INSERT INTO events VALUES (1,'click'), (2,'view'), (3,'click')`)

	// Queries from the BI application land in the bi pool (80% of
	// executors, 5 concurrent); everything else defaults to etl.
	s.SetUser("analyst", "visualization_app")
	res := s.MustExec(`SELECT kind, COUNT(*) FROM events GROUP BY kind ORDER BY kind`)
	fmt.Println("\nBI query result (admitted via pool bi):")
	fmt.Println(res)

	mgr := wh.Server().WorkloadManager()
	running, inUse, execs, _ := mgr.PoolSnapshot("bi")
	fmt.Printf("\npool bi: %d running, %d executors in use of %d\n", running, inUse, execs)
}
